// Package tracing is the engine's structured trace timeline — the paper's
// §IV-B thread-view and §IV-C affinity analyses applied to the *real* engine
// rather than the simulated internal/perfmon model.
//
// The Tracer wraps a telemetry.Recorder as the engine's telemetry.Sink.
// Worker-side record paths (Chunk, Steal, Park) delegate straight to the
// lock-free rings — plus, optionally, a 1-in-K goroutine→CPU affinity probe
// — so tracing adds no new hot-path cost beyond what the observer-native
// experiment already gates. All span assembly happens on the coordinator at
// phase barriers and step boundaries, where the workers are idle by
// construction: PhaseBegin/PhaseEnd delimit per-phase spans with per-worker
// busy intervals and straggler attribution, and StepDone drains the rings
// into the finished step's record.
//
// Completed step records accumulate in a bounded ring — the flight recorder.
// Any run can be exported as Chrome-trace-event JSON and opened in
// ui.perfetto.dev (one track per worker plus a barrier track); when a step
// exceeds a configurable multiple of the rolling p99 the last N steps are
// dumped automatically as flight-<step>.trace.json, optionally followed by a
// short CPU profile of the aftermath.
package tracing

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"mw/internal/telemetry"
)

// PhaseSpan is one phase instance of one step: the barrier-to-barrier wall
// interval, each worker's busy time inside it, and the straggler attribution
// (which worker held the barrier, and by how much over the median).
type PhaseSpan struct {
	Phase      string  `json:"phase"`
	Index      uint8   `json:"index"`
	BeginUS    int64   `json:"begin_us"`
	EndUS      int64   `json:"end_us"`
	BusyUS     []int64 `json:"busy_us"` // per worker
	Straggler  int     `json:"straggler"`
	MedianUS   int64   `json:"median_us"`
	LatenessUS int64   `json:"lateness_us"` // straggler busy − median busy
}

// StepRecord is the structured trace of one completed timestep: its phase
// spans plus the raw ring events (chunks, steals, parks) drained at the step
// boundary.
type StepRecord struct {
	Step    int               `json:"step"`
	StartUS int64             `json:"start_us"`
	EndUS   int64             `json:"end_us"`
	Phases  []PhaseSpan       `json:"phases"`
	Events  []telemetry.Event `json:"events,omitempty"`
}

// WallUS returns the step's wall time in µs.
func (r *StepRecord) WallUS() int64 { return r.EndUS - r.StartUS }

// Config tunes the tracer. The zero value selects the defaults noted per
// field.
type Config struct {
	// RingSteps is how many completed step records the flight ring retains
	// (default 64).
	RingSteps int
	// AnomalyFactor triggers a flight dump when a step's wall time exceeds
	// this multiple of the rolling p99 (default 8; <0 disables detection,
	// 0 selects the default).
	AnomalyFactor float64
	// MinSteps is how many steps must complete before anomaly detection
	// arms (default 32) — the rolling p99 is meaningless on a cold start.
	MinSteps int
	// FlightDir is where flight-<step>.trace.json dumps are written
	// (default "": anomalies are counted but nothing is written).
	FlightDir string
	// CPUProfile, when positive, captures a CPU profile of that duration
	// into flight-<step>.cpu.pprof after each flight dump (skipped silently
	// if another profile is already running).
	CPUProfile time.Duration
	// AffinityEvery samples the executing worker's CPU every K chunk events
	// (default 256; <0 disables sampling, 0 selects the default). On
	// non-Linux builds the probe is a no-op.
	AffinityEvery int
	// DropEvents discards the drained ring events instead of retaining them
	// on each step record (spans survive; instant steal/park markers and
	// per-span chunk counts are lost from exports).
	DropEvents bool
	// OnFlight, when set, is called after each flight dump with the written
	// path (empty when FlightDir is "") and the triggering step.
	OnFlight func(path string, step int)
}

func (c Config) withDefaults() Config {
	if c.RingSteps <= 0 {
		c.RingSteps = 64
	}
	if c.AnomalyFactor == 0 {
		c.AnomalyFactor = 8
	}
	if c.MinSteps <= 0 {
		c.MinSteps = 32
	}
	if c.AffinityEvery == 0 {
		c.AffinityEvery = 256
	}
	return c
}

// affShard is one worker's affinity-probe state, padded so neighboring
// workers' counters stay off one cache line.
type affShard struct {
	chunks     atomic.Int64 // chunk events seen (probe trigger counter)
	samples    atomic.Int64
	migrations atomic.Int64
	// lastCPU is each worker's private migration cursor: initialized to -1 in
	// New, then advanced only by that worker's own sampleAffinity probes.
	//
	//mw:ring(writer=New,sampleAffinity)
	lastCPU atomic.Int32
	perCPU  []atomic.Int64
	_       [24]byte
}

// Tracer implements telemetry.Sink over an inner Recorder and assembles the
// per-step span timeline. Construct with New; install as core.Config
// Telemetry.
type Tracer struct {
	rec *telemetry.Recorder
	cfg Config

	phases  []string
	workers int

	// Coordinator-only state (the engine calls PhaseBegin/PhaseEnd/StepDone
	// from a single goroutine).
	cur           *StepRecord
	cursor        telemetry.DrainCursor
	stepHist      telemetry.Histogram // step wall time, feeds the rolling p99
	busyScratch   []int64
	cooldownUntil int

	// Flight ring of completed records, guarded for concurrent export.
	mu      sync.Mutex
	ring    []*StepRecord
	ringPos int
	total   int64 // completed steps ever traced

	anomalies   atomic.Int64
	flightDumps atomic.Int64
	lastFlight  atomic.Value // string: last dump path
	profiling   atomic.Bool  // single-flight guard for the CPU capture

	aff []affShard
}

// New wraps rec in a Tracer. The recorder's worker count and phase-name
// table define the timeline's tracks.
func New(rec *telemetry.Recorder, cfg Config) *Tracer {
	cfg = cfg.withDefaults()
	t := &Tracer{
		rec:         rec,
		cfg:         cfg,
		phases:      rec.PhaseNames(),
		workers:     rec.Workers(),
		ring:        make([]*StepRecord, cfg.RingSteps),
		busyScratch: make([]int64, rec.Workers()),
		aff:         make([]affShard, rec.Workers()),
	}
	ncpu := runtime.NumCPU()
	for i := range t.aff {
		t.aff[i].lastCPU.Store(-1)
		t.aff[i].perCPU = make([]atomic.Int64, ncpu)
	}
	t.cur = &StepRecord{StartUS: rec.NowMicros()}
	t.lastFlight.Store("")
	return t
}

// Recorder returns the wrapped telemetry recorder.
func (t *Tracer) Recorder() *telemetry.Recorder { return t.rec }

// PhaseBegin implements telemetry.Sink: delegate, then open a span on the
// current step record (coordinator path).
func (t *Tracer) PhaseBegin(step int, phase uint8) {
	t.rec.PhaseBegin(step, phase)
	name := ""
	if int(phase) < len(t.phases) {
		name = t.phases[phase]
	}
	t.cur.Phases = append(t.cur.Phases, PhaseSpan{
		Phase:     name,
		Index:     phase,
		BeginUS:   t.rec.NowMicros(),
		Straggler: -1,
	})
}

// PhaseEnd implements telemetry.Sink: delegate, then close the open span
// with per-worker busy times and straggler attribution (coordinator path).
func (t *Tracer) PhaseEnd(step int, phase uint8, wall time.Duration, workerBusy []time.Duration) {
	t.rec.PhaseEnd(step, phase, wall, workerBusy)
	if len(t.cur.Phases) == 0 {
		return
	}
	sp := &t.cur.Phases[len(t.cur.Phases)-1]
	if sp.Index != phase || sp.EndUS != 0 {
		return // unpaired end; drop rather than corrupt the last span
	}
	sp.EndUS = sp.BeginUS + int64(wall/time.Microsecond)
	n := t.workers
	if len(workerBusy) < n {
		n = len(workerBusy)
	}
	if cap(sp.BusyUS) < n {
		sp.BusyUS = make([]int64, n)
	}
	sp.BusyUS = sp.BusyUS[:n]
	for w := 0; w < n; w++ {
		sp.BusyUS[w] = int64(workerBusy[w] / time.Microsecond)
	}
	if n >= 2 {
		s := t.busyScratch[:0]
		straggler := 0
		for w := 0; w < n; w++ {
			if sp.BusyUS[w] > sp.BusyUS[straggler] {
				straggler = w
			}
			s = append(s, sp.BusyUS[w])
			for i := len(s) - 1; i > 0 && s[i-1] > s[i]; i-- {
				s[i-1], s[i] = s[i], s[i-1]
			}
		}
		sp.Straggler = straggler
		sp.MedianUS = s[len(s)/2]
		sp.LatenessUS = sp.BusyUS[straggler] - sp.MedianUS
	}
}

// Chunk implements telemetry.Sink: delegate to the ring, and every K-th
// chunk per worker run the goroutine→CPU affinity probe. The common path is
// one counter increment and one branch on top of the recorder's push.
//
//mw:hotpath
func (t *Tracer) Chunk(worker int, phase uint8) {
	t.rec.Chunk(worker, phase)
	if t.cfg.AffinityEvery > 0 && uint(worker) < uint(len(t.aff)) {
		a := &t.aff[worker]
		if a.chunks.Add(1)%int64(t.cfg.AffinityEvery) == 0 {
			t.sampleAffinity(a)
		}
	}
}

// sampleAffinity records which CPU the calling worker goroutine is on right
// now — the engine-native analogue of the paper's §IV-C thread-to-core
// affinity trace. Runs on the worker, 1-in-K chunks, one getcpu syscall.
//
//mw:coldcall
func (t *Tracer) sampleAffinity(a *affShard) {
	cpu := currentCPU()
	if cpu < 0 {
		return
	}
	a.samples.Add(1)
	if last := a.lastCPU.Load(); last >= 0 && last != cpu {
		a.migrations.Add(1)
	}
	a.lastCPU.Store(cpu)
	if int(cpu) < len(a.perCPU) {
		a.perCPU[cpu].Add(1)
	}
}

// Steal implements telemetry.Sink (worker path, delegate only — the edge is
// reconstructed from the ring at the step boundary).
//
//mw:hotpath
func (t *Tracer) Steal(worker int) { t.rec.Steal(worker) }

// Park implements telemetry.Sink (worker path, delegate only).
//
//mw:hotpath
func (t *Tracer) Park(worker int, wait time.Duration) { t.rec.Park(worker, wait) }

// StepDone implements telemetry.Sink: delegate, then finalize the step's
// record — drain the rings for this step's chunk/steal/park events, run the
// anomaly check against the rolling p99, rotate the flight ring, and start
// the next record. Runs between steps on the coordinator, off every worker's
// critical path.
func (t *Tracer) StepDone(step int) {
	t.rec.StepDone(step)
	cur := t.cur
	cur.Step = step
	cur.EndUS = t.rec.NowMicros()
	t.rec.Drain(&t.cursor, func(owner int, e telemetry.Event) {
		if !t.cfg.DropEvents {
			cur.Events = append(cur.Events, e)
		}
	})

	wall := time.Duration(cur.WallUS()) * time.Microsecond
	anomalous := false
	if t.cfg.AnomalyFactor > 0 && t.stepHist.Count() >= int64(t.cfg.MinSteps) && step >= t.cooldownUntil {
		if p99 := t.stepHist.Quantile(0.99); p99 > 0 && wall > time.Duration(t.cfg.AnomalyFactor*float64(p99)) {
			anomalous = true
		}
	}
	t.stepHist.Observe(wall)

	t.mu.Lock()
	evicted := t.ring[t.ringPos]
	t.ring[t.ringPos] = cur
	t.ringPos = (t.ringPos + 1) % len(t.ring)
	t.total++
	t.mu.Unlock()

	if anomalous {
		t.anomalies.Add(1)
		// Re-arm only after a full ring of fresh steps, so one pathology
		// produces one dump, not a dump per step while it persists.
		t.cooldownUntil = step + len(t.ring)
		t.dumpFlight(step)
	}

	// Recycle the evicted record's storage for the next step.
	next := evicted
	if next == nil {
		next = &StepRecord{}
	}
	next.Step = 0
	next.StartUS = cur.EndUS
	next.EndUS = 0
	next.Phases = next.Phases[:0]
	next.Events = next.Events[:0]
	t.cur = next
}

// Records returns the retained completed step records, oldest first. The
// records are the live ring entries; callers must treat them as read-only
// and copy what they keep past the next len(ring) steps.
func (t *Tracer) Records() []*StepRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.recordsLocked()
}

func (t *Tracer) recordsLocked() []*StepRecord {
	out := make([]*StepRecord, 0, len(t.ring))
	for i := 0; i < len(t.ring); i++ {
		if r := t.ring[(t.ringPos+i)%len(t.ring)]; r != nil {
			out = append(out, r)
		}
	}
	return out
}

// TotalSteps returns how many steps the tracer has completed tracing.
func (t *Tracer) TotalSteps() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Anomalies returns how many steps breached the anomaly threshold.
func (t *Tracer) Anomalies() int64 { return t.anomalies.Load() }

// FlightDumps returns how many flight files were written, and the last path.
func (t *Tracer) FlightDumps() (int64, string) {
	return t.flightDumps.Load(), t.lastFlight.Load().(string)
}

// dumpFlight writes the ring (the last N steps, anomalous step included) as
// a Chrome trace to FlightDir, then optionally captures a short CPU profile
// of the aftermath.
func (t *Tracer) dumpFlight(step int) {
	path := ""
	if t.cfg.FlightDir != "" {
		t.mu.Lock()
		recs := t.recordsLocked()
		t.mu.Unlock()
		path = filepath.Join(t.cfg.FlightDir, fmt.Sprintf("flight-%06d.trace.json", step))
		if err := writeTraceFile(path, recs, t.workers); err == nil {
			t.flightDumps.Add(1)
			t.lastFlight.Store(path)
		} else {
			path = ""
		}
		if t.cfg.CPUProfile > 0 && t.profiling.CompareAndSwap(false, true) {
			prof := filepath.Join(t.cfg.FlightDir, fmt.Sprintf("flight-%06d.cpu.pprof", step))
			go t.captureCPU(prof)
		}
	}
	if t.cfg.OnFlight != nil {
		t.cfg.OnFlight(path, step)
	}
}

// captureCPU profiles the process for cfg.CPUProfile — the "what was the
// engine doing right after the anomaly" capture. Best-effort: if another
// profile is active (the engine may be serving /debug/pprof/profile), the
// capture is skipped.
func (t *Tracer) captureCPU(path string) {
	defer t.profiling.Store(false)
	f, err := os.Create(path)
	if err != nil {
		return
	}
	defer f.Close()
	if err := pprof.StartCPUProfile(f); err != nil {
		os.Remove(path)
		return
	}
	time.Sleep(t.cfg.CPUProfile)
	pprof.StopCPUProfile()
}

// writeTraceFile exports records as Chrome trace JSON to path.
func writeTraceFile(path string, recs []*StepRecord, workers int) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteChromeTrace(f, recs, workers); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
