package tracing

import "sort"

// BlameRow is one worker's aggregate barrier blame over a set of step
// records: how often it was the phase straggler and how much barrier time it
// cost versus the median worker.
type BlameRow struct {
	Worker       int
	Stragglers   int     // phase instances finished last
	ByPhase      []int64 // indexed by phase Index
	LatenessUS   int64   // total lateness vs median
	WorstStep    int     // step of the single worst lateness
	WorstPhase   string
	WorstLateUS  int64
	PhaseSamples int // phase instances with ≥2 workers observed
}

// Blame aggregates straggler attribution over records. phases sizes the
// per-phase columns (use len of the engine's phase table).
func Blame(recs []*StepRecord, workers, phases int) []BlameRow {
	rows := make([]BlameRow, workers)
	for w := range rows {
		rows[w].Worker = w
		rows[w].ByPhase = make([]int64, phases)
	}
	for _, rec := range recs {
		for i := range rec.Phases {
			sp := &rec.Phases[i]
			if sp.Straggler < 0 || sp.Straggler >= workers {
				continue
			}
			r := &rows[sp.Straggler]
			r.Stragglers++
			r.PhaseSamples++
			if int(sp.Index) < phases {
				r.ByPhase[sp.Index]++
			}
			r.LatenessUS += sp.LatenessUS
			if sp.LatenessUS > r.WorstLateUS {
				r.WorstLateUS = sp.LatenessUS
				r.WorstStep = rec.Step
				r.WorstPhase = sp.Phase
			}
		}
	}
	return rows
}

// WorstSteps returns up to k step records ordered by descending wall time —
// the "which steps blew up" view of the flight ring.
func WorstSteps(recs []*StepRecord, k int) []*StepRecord {
	out := append([]*StepRecord(nil), recs...)
	sort.Slice(out, func(i, j int) bool { return out[i].WallUS() > out[j].WallUS() })
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}
