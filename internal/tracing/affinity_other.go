//go:build !linux

package tracing

// currentCPU is unavailable off Linux; the affinity probe degrades to a
// no-op and Affinity reports zero samples.
func currentCPU() int32 { return -1 }
