package tracing

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// The Chrome trace-event format (the JSON Perfetto and chrome://tracing
// load): an object with a traceEvents array of events carrying ph (event
// type), ts (µs), pid/tid (track), and name. The exporter lays the engine
// out as one process with tid 0 = the barrier/coordinator track and
// tid w+1 = worker w's track:
//
//   - per phase instance: a B/E span on the barrier track over the full
//     barrier-to-barrier wall, with straggler attribution in args; on every
//     worker track a B/E span over that worker's busy interval, then a
//     "barrier-wait" span from the moment it finished until the barrier
//     opened — the straggler is the worker with no wait bar.
//   - steal and park ring events become instant ("i") marks on the thief's /
//     parked worker's track.
//   - per-span chunk counts (from the ring events) ride in args.

// chromeEvent is one trace event.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   int64          `json:"ts"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope ("t" = thread)
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the enclosing object.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

const tracePid = 1

// WriteChromeTrace exports step records as Chrome trace-event JSON, loadable
// in ui.perfetto.dev. workers sizes the track set (use the engine's worker
// count; ring events naming higher workers are dropped).
func WriteChromeTrace(w io.Writer, recs []*StepRecord, workers int) error {
	events := make([]chromeEvent, 0, 64)

	meta := func(name string, tid int, args map[string]any) {
		events = append(events, chromeEvent{Name: name, Ph: "M", Pid: tracePid, Tid: tid, Args: args})
	}
	meta("process_name", 0, map[string]any{"name": "mw engine"})
	meta("thread_name", 0, map[string]any{"name": "barrier (coordinator)"})
	meta("thread_sort_index", 0, map[string]any{"sort_index": -1})
	for wk := 0; wk < workers; wk++ {
		meta("thread_name", wk+1, map[string]any{"name": fmt.Sprintf("worker %d", wk)})
	}

	var data []chromeEvent
	for _, rec := range recs {
		// Chunk counts per (worker, phase index) for this step, from the
		// drained ring events; steal/park become instants.
		chunkCount := make(map[[2]int]int64)
		for _, e := range rec.Events {
			switch e.Kind {
			case "chunk":
				ph := phaseIndexOf(rec, e.Phase)
				if e.Worker >= 0 && e.Worker < workers {
					chunkCount[[2]int{e.Worker, ph}]++
				}
			case "steal", "park":
				if e.Worker >= 0 && e.Worker < workers {
					data = append(data, chromeEvent{
						Name: e.Kind, Cat: "sched", Ph: "i", S: "t",
						TS: e.AtUS, Pid: tracePid, Tid: e.Worker + 1,
						Args: map[string]any{"step": e.Step},
					})
				}
			}
		}
		for pi := range rec.Phases {
			sp := &rec.Phases[pi]
			if sp.EndUS == 0 {
				continue // step cut mid-phase; skip the open span
			}
			args := map[string]any{"step": rec.Step}
			if sp.Straggler >= 0 {
				args["straggler"] = sp.Straggler
				args["lateness_us"] = sp.LatenessUS
				args["median_busy_us"] = sp.MedianUS
			}
			data = append(data,
				chromeEvent{Name: sp.Phase, Cat: "phase", Ph: "B", TS: sp.BeginUS, Pid: tracePid, Tid: 0, Args: args},
				chromeEvent{Name: sp.Phase, Cat: "phase", Ph: "E", TS: sp.EndUS, Pid: tracePid, Tid: 0})
			for wk := 0; wk < len(sp.BusyUS) && wk < workers; wk++ {
				busyEnd := sp.BeginUS + sp.BusyUS[wk]
				if busyEnd > sp.EndUS {
					busyEnd = sp.EndUS
				}
				wargs := map[string]any{"step": rec.Step, "busy_us": sp.BusyUS[wk]}
				if n := chunkCount[[2]int{wk, int(sp.Index)}]; n > 0 {
					wargs["chunks"] = n
				}
				data = append(data,
					chromeEvent{Name: sp.Phase, Cat: "worker", Ph: "B", TS: sp.BeginUS, Pid: tracePid, Tid: wk + 1, Args: wargs},
					chromeEvent{Name: sp.Phase, Cat: "worker", Ph: "E", TS: busyEnd, Pid: tracePid, Tid: wk + 1})
				if busyEnd < sp.EndUS {
					data = append(data,
						chromeEvent{Name: "barrier-wait", Cat: "wait", Ph: "B", TS: busyEnd, Pid: tracePid, Tid: wk + 1},
						chromeEvent{Name: "barrier-wait", Cat: "wait", Ph: "E", TS: sp.EndUS, Pid: tracePid, Tid: wk + 1})
				}
			}
		}
	}

	// A stable sort by timestamp makes every track's event sequence
	// monotonic while preserving the B-before-E emission order of
	// zero-length spans and back-to-back span boundaries.
	sort.SliceStable(data, func(i, j int) bool { return data[i].TS < data[j].TS })
	events = append(events, data...)

	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// phaseIndexOf maps a ring event's phase name back to the span index within
// the record (-1 when absent).
func phaseIndexOf(rec *StepRecord, phase string) int {
	for i := range rec.Phases {
		if rec.Phases[i].Phase == phase {
			return int(rec.Phases[i].Index)
		}
	}
	return -1
}

// Export writes every retained step record as Chrome trace JSON.
func (t *Tracer) Export(w io.Writer) error {
	return WriteChromeTrace(w, t.Records(), t.workers)
}

// TraceStats summarizes a validated trace.
type TraceStats struct {
	Events     int   // all non-metadata events
	Spans      int   // matched B/E pairs
	Instants   int   // "i" events
	Tracks     int   // distinct tids with data events
	FirstUS    int64 // earliest data-event timestamp
	LastUS     int64 // latest data-event timestamp
	PerTrack   map[int]int
	TrackNames map[int]string
}

// ValidateChromeTrace decodes data and checks the structural invariants a
// timeline viewer relies on: every non-metadata event carries a known phase
// type, timestamps are monotonic non-decreasing per track (in array order),
// and every track's B/E events balance — equal counts, never a close
// without an open, and every E at or after its B. Returns summary stats.
func ValidateChromeTrace(data []byte) (*TraceStats, error) {
	var tr chromeTrace
	if err := json.Unmarshal(data, &tr); err != nil {
		// Bare-array form is also legal Chrome trace JSON.
		if err2 := json.Unmarshal(data, &tr.TraceEvents); err2 != nil {
			return nil, fmt.Errorf("tracing: not Chrome trace JSON: %w", err)
		}
	}
	st := &TraceStats{PerTrack: map[int]int{}, TrackNames: map[int]string{}}
	lastTS := map[int]int64{}
	stacks := map[int][]chromeEvent{}
	for i, ev := range tr.TraceEvents {
		if ev.Ph == "M" {
			if ev.Name == "thread_name" && ev.Args != nil {
				if n, ok := ev.Args["name"].(string); ok {
					st.TrackNames[ev.Tid] = n
				}
			}
			continue
		}
		if last, seen := lastTS[ev.Tid]; seen && ev.TS < last {
			return nil, fmt.Errorf("tracing: event %d (%s) on tid %d goes back in time: ts %d after %d",
				i, ev.Name, ev.Tid, ev.TS, last)
		}
		lastTS[ev.Tid] = ev.TS
		if st.Events == 0 || ev.TS < st.FirstUS {
			st.FirstUS = ev.TS
		}
		if ev.TS > st.LastUS {
			st.LastUS = ev.TS
		}
		st.Events++
		st.PerTrack[ev.Tid]++
		switch ev.Ph {
		case "B":
			stacks[ev.Tid] = append(stacks[ev.Tid], ev)
		case "E":
			stk := stacks[ev.Tid]
			if len(stk) == 0 {
				return nil, fmt.Errorf("tracing: event %d: E %q on tid %d without a matching B", i, ev.Name, ev.Tid)
			}
			open := stk[len(stk)-1]
			if ev.TS < open.TS {
				return nil, fmt.Errorf("tracing: event %d: E %q on tid %d ends (ts %d) before its B (ts %d)",
					i, ev.Name, ev.Tid, ev.TS, open.TS)
			}
			stacks[ev.Tid] = stk[:len(stk)-1]
			st.Spans++
		case "i", "I":
			st.Instants++
		default:
			return nil, fmt.Errorf("tracing: event %d: unsupported phase type %q", i, ev.Ph)
		}
	}
	for tid, stk := range stacks {
		if len(stk) != 0 {
			return nil, fmt.Errorf("tracing: tid %d has %d unclosed B events (first: %q)", tid, len(stk), stk[0].Name)
		}
	}
	st.Tracks = len(st.PerTrack)
	return st, nil
}
