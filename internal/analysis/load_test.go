package analysis

import (
	"strings"
	"testing"
)

// TestLoadRealPackages exercises the export-data loader on the live tree:
// the hot packages must load, type-check, and carry their directives.
func TestLoadRealPackages(t *testing.T) {
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(root, "./internal/forces", "./internal/pool")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("loaded %d packages, want 2", len(pkgs))
	}
	hot := 0
	for _, pkg := range pkgs {
		if pkg.Types == nil || pkg.Info == nil {
			t.Fatalf("%s: missing type information", pkg.Path)
		}
		for _, f := range pkg.Files {
			hot += len(FuncsWithDirective(f, HotPathDirective))
		}
	}
	if hot == 0 {
		t.Fatal("no //mw:hotpath functions found in internal/forces + internal/pool; annotations lost?")
	}
}

// TestRunCleanOnTree is the gate the Makefile relies on: the analyzer suite
// must be silent on the current tree.
func TestRunCleanOnTree(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(root, "./...")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(pkgs, All())
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) > 0 {
		var sb strings.Builder
		for _, d := range diags {
			sb.WriteString("\n  " + d.String())
		}
		t.Fatalf("mwlint analyzers report findings on the tree:%s", sb.String())
	}
}

func TestParseWant(t *testing.T) {
	got, ok := parseWant("// want `a b` \"c\\\"d\"")
	if !ok || len(got) != 2 || got[0] != "a b" || got[1] != `c"d` {
		t.Fatalf("parseWant: got %q ok=%v", got, ok)
	}
	if _, ok := parseWant("// plain comment mentioning want nothing"); ok {
		t.Fatal("parseWant matched a non-want comment")
	}
	if _, ok := parseWant("// want"); ok {
		t.Fatal("parseWant matched a want with no patterns")
	}
}
