package analysis

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// This file holds the machinery shared by the two compiler-backed codegen
// gates (vecasm.go, bce.go): a syntax-only index of //mw:hotpath functions
// and their loop line ranges, and the `go build` invocation that captures
// compiler diagnostics or assembly under a pinned GOAMD64 level.
//
// Both gates attribute compiler output to source positions, so they share
// the same notion of "inside a hot loop": a line that falls within a
// for/range statement of an annotated function. The escape-budget gate
// (escapes.go) predates this index and keeps its own; the hot sets agree
// because both are driven by the same directive comments.

// CodegenArch is the only architecture the codegen gates understand: the
// instruction classifier and the committed baselines are amd64-specific.
// Callers on other architectures should skip the gates rather than fail.
const CodegenArch = "amd64"

// CodegenAMD64Level pins the microarchitecture level the gates compile for.
// v3 (AVX2-class) is what ROADMAP item 1 targets for the cluster-pair kernel
// work; the committed baselines are only meaningful at this level.
const CodegenAMD64Level = "v3"

// HotFunc is one annotated function with its source extent and loop spans.
type HotFunc struct {
	Name  string // declaration name (receiver not included)
	File  string // module-root-relative, slash-separated
	Lo    int    // declaration line span, inclusive
	Hi    int
	Loops []LineSpan // for/range statement spans within the body
}

// LineSpan is an inclusive source line range.
type LineSpan struct{ Lo, Hi int }

// InLoop reports whether the line falls inside any loop of the function.
func (h *HotFunc) InLoop(line int) bool {
	for _, s := range h.Loops {
		if line >= s.Lo && line <= s.Hi {
			return true
		}
	}
	return false
}

// HotIndex locates //mw:hotpath functions by file and line.
type HotIndex struct {
	byFile map[string][]*HotFunc
}

// BuildHotIndex parses (syntax only) the packages matching the patterns and
// records every //mw:hotpath function declaration with its loop spans.
func BuildHotIndex(moduleRoot string, patterns ...string) (*HotIndex, error) {
	listed, err := goList(moduleRoot, append([]string{"-json=ImportPath,Dir,GoFiles"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	ix := &HotIndex{byFile: map[string][]*HotFunc{}}
	fset := token.NewFileSet()
	for _, lp := range listed {
		for _, name := range lp.GoFiles {
			path := filepath.Join(lp.Dir, name)
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, err
			}
			rel, err := filepath.Rel(moduleRoot, path)
			if err != nil {
				rel = path
			}
			rel = filepath.ToSlash(rel)
			for _, fd := range FuncsWithDirective(f, HotPathDirective) {
				if fd.Body == nil {
					continue
				}
				hf := &HotFunc{
					Name: fd.Name.Name,
					File: rel,
					Lo:   fset.Position(fd.Pos()).Line,
					Hi:   fset.Position(fd.End()).Line,
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					switch n.(type) {
					case *ast.ForStmt, *ast.RangeStmt:
						hf.Loops = append(hf.Loops, LineSpan{
							Lo: fset.Position(n.Pos()).Line,
							Hi: fset.Position(n.End()).Line,
						})
					}
					return true
				})
				ix.byFile[rel] = append(ix.byFile[rel], hf)
			}
		}
	}
	return ix, nil
}

// FuncAt returns the hot function whose declaration spans the line of the
// (possibly absolute) file path, matching by module-root-relative suffix.
func (ix *HotIndex) FuncAt(file string, line int) (*HotFunc, bool) {
	for rel, funcs := range ix.byFile {
		if !samePath(file, rel) {
			continue
		}
		for _, hf := range funcs {
			if line >= hf.Lo && line <= hf.Hi {
				return hf, true
			}
		}
	}
	return nil, false
}

// Files returns the indexed file names in sorted order.
func (ix *HotIndex) Files() []string {
	out := make([]string, 0, len(ix.byFile))
	for f := range ix.byFile {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// samePath matches a compiler-printed path against a module-relative one:
// equal, or one is a path suffix of the other.
func samePath(printed, rel string) bool {
	printed = filepath.ToSlash(printed)
	return printed == rel ||
		strings.HasSuffix(printed, "/"+rel) ||
		strings.HasSuffix(rel, "/"+printed)
}

// CompilerOutput runs `go build` with the given gcflags over the patterns
// and returns the combined compiler output. GOAMD64 is pinned to
// CodegenAMD64Level so the emitted code (and thus the committed baselines)
// does not depend on the host's default microarchitecture level. The build
// cache replays diagnostics for cached compilations, keeping repeat runs
// fast; because the env differs from the default build, the first run after
// a toolchain or source change recompiles the gated packages.
func CompilerOutput(moduleRoot, gcflags string, patterns ...string) (string, error) {
	args := append([]string{"build", "-gcflags=" + gcflags}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = moduleRoot
	cmd.Env = append(os.Environ(), "GOAMD64="+CodegenAMD64Level)
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	if err := cmd.Run(); err != nil {
		return "", fmt.Errorf("GOAMD64=%s go %s: %v\n%s",
			CodegenAMD64Level, strings.Join(args, " "), err, buf.String())
	}
	return buf.String(), nil
}

// readBaselineLines returns the non-comment lines of a baseline file.
func readBaselineLines(path, regenHint string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("baseline (run `%s` to create it): %w", regenHint, err)
	}
	var out []string
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		out = append(out, line)
	}
	return out, nil
}

// writeBaselineLines writes a baseline file with the given header comment
// lines (without leading #) and entries.
func writeBaselineLines(path string, header []string, entries []string) error {
	var b strings.Builder
	for _, h := range header {
		b.WriteString("# " + h + "\n")
	}
	for _, e := range entries {
		b.WriteString(e + "\n")
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}
