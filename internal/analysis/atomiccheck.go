package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AtomicCheck guards the atomics discipline the lock-free layers of the
// engine rest on. The telemetry rings, the tracing affinity shards, the pool
// counters and the serve session stats all follow two hand-maintained rules
// that, like the paper's latch discipline, used to live only in comments:
//
//  1. A memory word is either always atomic or never atomic. A field that is
//     read with sync/atomic in one place and with a plain load somewhere else
//     is a data race the happens-to-work memory model of one architecture can
//     hide for years. AtomicCheck records every field (or package-level
//     variable) whose address is passed to a function-style sync/atomic call
//     and flags every plain read or write of the same field. Fields of the
//     typed atomic.Int64/Uint64/... family are immune by construction — the
//     type system already forbids plain access — which is why the engine
//     prefers them; the rule exists for the function-style escape hatch.
//
//  2. Single-writer ring cursors stay single-writer. The lock-free rings are
//     correct only because exactly one goroutine advances the write cursor
//     (telemetry.ring: "single producer: plain load-modify-store ordering").
//     The `//mw:ring(writer=push)` directive on the cursor field declares the
//     sanctioned writer set; AtomicCheck flags any mutating atomic operation
//     (Store/Add/Swap/CompareAndSwap/And/Or, method- or function-style) on
//     that field from any other function.
var AtomicCheck = &Analyzer{
	Name: "atomiccheck",
	Doc:  "flags mixed atomic/plain field access and ring-cursor writes outside the declared writer",
	Run:  runAtomicCheck,
}

// ringField is one //mw:ring-annotated cursor field.
type ringField struct {
	writers []string
	name    string
}

func runAtomicCheck(pass *Pass) error {
	rings := collectRingFields(pass)

	// Pass 1: every sync/atomic access. Records which objects are accessed
	// atomically (for the mixed-access rule), which selector nodes are
	// sanctioned by being the address argument of an atomic call (so pass 2
	// does not re-flag them), and checks ring-writer discipline on mutating
	// operations.
	atomicAt := map[types.Object]token.Pos{}
	sanctioned := map[ast.Node]bool{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fnName := fd.Name.Name
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if op, arg := funcStyleAtomic(pass, call); op != "" {
					target := ast.Unparen(arg)
					sanctioned[target] = true
					if obj := accessedObject(pass, target); obj != nil {
						if _, seen := atomicAt[obj]; !seen {
							atomicAt[obj] = call.Pos()
						}
						if rf, ok := rings[obj]; ok && mutatingAtomicOp(op) {
							checkRingWriter(pass, call.Pos(), rf, fnName)
						}
					}
					return true
				}
				if op, recv := methodStyleAtomic(pass, call); op != "" {
					if obj := accessedObject(pass, ast.Unparen(recv)); obj != nil {
						if rf, ok := rings[obj]; ok && mutatingAtomicOp(op) {
							checkRingWriter(pass, call.Pos(), rf, fnName)
						}
					}
					return true
				}
				return true
			})
		}
	}
	if len(atomicAt) == 0 {
		return nil
	}

	// Pass 2: plain accesses of the atomically-accessed objects. Write
	// contexts (assignment targets, ++/--) are collected first so the
	// diagnostic can say which side of the race this is.
	for _, f := range pass.Files {
		writes := map[ast.Node]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					writes[ast.Unparen(lhs)] = true
				}
			case *ast.IncDecStmt:
				writes[ast.Unparen(n.X)] = true
			case *ast.UnaryExpr:
				if n.Op == token.AND {
					// Taking the address outside an atomic call hands out an
					// alias the rule cannot follow; flag it as a write.
					writes[ast.Unparen(n.X)] = true
				}
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			expr, ok := n.(ast.Expr)
			if !ok || sanctioned[n] {
				return true
			}
			switch n.(type) {
			case *ast.SelectorExpr, *ast.Ident:
			default:
				return true
			}
			obj := accessedObject(pass, expr)
			if obj == nil {
				return true
			}
			at, tracked := atomicAt[obj]
			if !tracked || obj.Pos() == n.Pos() {
				return true // not atomic, or this is the declaration itself
			}
			if _, ok := n.(*ast.Ident); ok {
				// A field is reported via its enclosing SelectorExpr; the Sel
				// identifier inside it must not be flagged a second time. Bare
				// identifiers only ever denote package-level variables.
				if v, ok := obj.(*types.Var); ok && v.IsField() {
					return true
				}
			}
			kind := "read of"
			if writes[n] {
				kind = "write to"
			}
			pass.Reportf(n.Pos(), "plain %s %s, which is accessed with sync/atomic at %s",
				kind, obj.Name(), pass.Fset.Position(at))
			return true
		})
	}
	return nil
}

// collectRingFields finds struct fields annotated //mw:ring(writer=...),
// reporting malformed directives in place.
func collectRingFields(pass *Pass) map[types.Object]*ringField {
	rings := map[types.Object]*ringField{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
					writers, ok, problem := RingWriters(cg)
					if !ok {
						continue
					}
					if problem != "" {
						pass.Reportf(field.Pos(), "malformed //mw:ring directive: %s", problem)
						continue
					}
					for _, name := range field.Names {
						if obj := pass.Info.Defs[name]; obj != nil {
							rings[obj] = &ringField{writers: writers, name: name.Name}
						}
					}
				}
			}
			return true
		})
	}
	return rings
}

func checkRingWriter(pass *Pass, pos token.Pos, rf *ringField, fnName string) {
	for _, w := range rf.writers {
		if w == fnName {
			return
		}
	}
	pass.Reportf(pos, "ring cursor %s written in %s, outside its declared writer set (%s)",
		rf.name, fnName, strings.Join(rf.writers, ", "))
}

// funcStyleAtomic matches atomic.StoreInt64(&x, v)-style calls, returning
// the operation name and the address argument.
func funcStyleAtomic(pass *Pass, call *ast.CallExpr) (op string, addr ast.Expr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || len(call.Args) == 0 {
		return "", nil
	}
	pkgID, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", nil
	}
	pn, ok := pass.Info.Uses[pkgID].(*types.PkgName)
	if !ok || pn.Imported().Path() != "sync/atomic" {
		return "", nil
	}
	un, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
	if !ok || un.Op != token.AND {
		return "", nil
	}
	return sel.Sel.Name, un.X
}

// methodStyleAtomic matches x.head.Store(v)-style calls on the typed
// sync/atomic values, returning the method name and the receiver expression.
func methodStyleAtomic(pass *Pass, call *ast.CallExpr) (op string, recv ast.Expr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", nil
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return "", nil
	}
	return fn.Name(), sel.X
}

// mutatingAtomicOp reports whether the atomic operation writes the word:
// everything except the pure loads.
func mutatingAtomicOp(op string) bool {
	return !strings.HasPrefix(op, "Load")
}

// accessedObject resolves a selector or identifier to the field or variable
// object it denotes, or nil for anything else (methods, types, packages).
func accessedObject(pass *Pass, expr ast.Expr) types.Object {
	var obj types.Object
	switch e := expr.(type) {
	case *ast.SelectorExpr:
		if s, ok := pass.Info.Selections[e]; ok {
			obj = s.Obj()
		} else {
			obj = pass.Info.Uses[e.Sel]
		}
	case *ast.Ident:
		obj = pass.Info.Uses[e]
	default:
		return nil
	}
	if v, ok := obj.(*types.Var); ok {
		return v
	}
	return nil
}
