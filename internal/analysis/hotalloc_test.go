package analysis

import "testing"

func TestHotAlloc(t *testing.T) {
	RunFixtureTest(t, HotAlloc, "testdata/hotalloc")
}
