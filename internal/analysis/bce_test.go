package analysis

import (
	"runtime"
	"testing"
)

func TestParseBCEDiags(t *testing.T) {
	out := `# mw/internal/forces
internal/forces/lj.go:100:20: Found IsInBounds
internal/forces/lj.go:134:26: Found IsSliceInBounds
internal/cells/rangelist.go:99:21: Found IsSliceInBounds
internal/forces/lj.go:12:1: inlining call to vec.Vec3.Sub
not a diagnostic line
`
	diags := ParseBCEDiags(out)
	if len(diags) != 3 {
		t.Fatalf("parsed %d diagnostics, want 3: %+v", len(diags), diags)
	}
	want := []BCEDiag{
		{File: "internal/forces/lj.go", Line: 100, Kind: "IsInBounds"},
		{File: "internal/forces/lj.go", Line: 134, Kind: "IsSliceInBounds"},
		{File: "internal/cells/rangelist.go", Line: 99, Kind: "IsSliceInBounds"},
	}
	for i, w := range want {
		if diags[i] != w {
			t.Errorf("diag[%d] = %+v, want %+v", i, diags[i], w)
		}
	}
}

func TestBCEEntryFormat(t *testing.T) {
	k := bceKey{file: "internal/forces/lj.go", fn: "AccumulateRange", kind: "IsInBounds"}
	entry := k.entry(3)
	m := bceEntryRE.FindStringSubmatch(entry)
	if m == nil {
		t.Fatalf("entry %q does not match its own parser", entry)
	}
	if m[1] != k.file || m[2] != k.fn || m[3] != k.kind || m[4] != "3" {
		t.Errorf("round-trip mismatch: %v", m[1:])
	}
}

// TestBCEGateAgainstBaseline runs the real gate against the committed
// baseline, as `make lint-codegen` does. The critical assertion is encoded
// in the baseline itself: no forces/lj.go entries — the LJ pair loops carry
// no bounds checks.
func TestBCEGateAgainstBaseline(t *testing.T) {
	if runtime.GOARCH != CodegenArch {
		t.Skipf("bce gate baseline is recorded on %s; running on %s", CodegenArch, runtime.GOARCH)
	}
	if testing.Short() {
		t.Skip("compiles the gated packages; skipped with -short")
	}
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := DefaultBCEGate(root).Check(false)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range rep.New {
		t.Errorf("bce: new hot-loop bounds check: %s", e)
	}
	for _, e := range rep.Stale {
		t.Errorf("bce: stale baseline entry: %s", e)
	}
	for _, e := range rep.InScope {
		if len(e) >= len("internal/forces/lj.go") && e[:len("internal/forces/lj.go")] == "internal/forces/lj.go" {
			t.Errorf("bce: LJ kernel loop carries a bounds check: %s", e)
		}
	}
}
