package analysis

import (
	"go/ast"
	"go/types"
	"sort"
)

// HotProp closes the annotation gap every other rule silently depends on:
// hotalloc, the escape gate, vecasm and bce all key off //mw:hotpath, so a
// hot helper that nobody annotated is a hot helper nobody checks. HotProp
// walks the static call graph from every annotated function and reports each
// direct callee, declared anywhere in the module, that is neither
// //mw:hotpath (it is hot-path code and must be gated) nor //mw:coldcall
// (it is a sanctioned slow path — an error edge, a 1-in-K sampling probe, a
// park/blocking path — that hot code may call without dragging it into the
// gates). With the tree clean, the hot set is transitively closed: every
// function reachable from a hot root by direct calls is itself annotated and
// therefore inside every gate's scope.
//
// Dynamic edges — interface-method calls and invocations of function values
// — cannot be resolved statically and are not reported; the pool's Task
// dispatch is the sanctioned example. Calls into other modules (stdlib
// included) are likewise out of scope: the gates cannot instrument code they
// do not compile with project flags.
var HotProp = &Analyzer{
	Name:      "hotprop",
	Doc:       "reports unannotated functions reachable from //mw:hotpath roots",
	RunModule: runHotProp,
}

// hotDecl is one module function declaration with its annotation state.
type hotDecl struct {
	pkg  *Package
	decl *ast.FuncDecl
	hot  bool
	cold bool
}

func runHotProp(pass *ModulePass) error {
	// Index every function declaration in the module by a stable
	// package-path-qualified key: a callee resolved through export data in
	// one package and the same function type-checked from source are
	// distinct types.Object instances, so object identity cannot be the
	// cross-package join.
	decls := map[string]*hotDecl{}
	for _, pkg := range pass.Pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				decls[funcKey(fn)] = &hotDecl{
					pkg:  pkg,
					decl: fd,
					hot:  HasDirective(fd.Doc, HotPathDirective),
					cold: HasDirective(fd.Doc, ColdCallDirective),
				}
			}
		}
	}

	// Walk each hot root's body and check every statically resolved callee.
	type edge struct{ caller, callee string }
	reported := map[edge]bool{}
	var roots []string
	for key, d := range decls {
		if d.hot && d.decl.Body != nil {
			roots = append(roots, key)
		}
	}
	sort.Strings(roots)
	for _, caller := range roots {
		d := decls[caller]
		ast.Inspect(d.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := staticCallee(d.pkg, call)
			if callee == nil {
				return true
			}
			key := funcKey(callee)
			cd, ok := decls[key]
			if !ok || cd.hot || cd.cold {
				return true // out of module, or already annotated
			}
			e := edge{caller, key}
			if !reported[e] {
				reported[e] = true
				pass.Pass(d.pkg).Reportf(call.Pos(),
					"hot function %s calls unannotated %s; mark it //mw:hotpath (gated) or //mw:coldcall (sanctioned slow path)",
					d.decl.Name.Name, calleeName(callee))
			}
			return true
		})
	}
	return nil
}

// funcKey is the cross-package identity of a function or method:
// "pkgpath.Name" or "pkgpath.Recv.Name".
func funcKey(fn *types.Func) string {
	key := fn.Name()
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok {
			key = n.Obj().Name() + "." + key
		}
	}
	if fn.Pkg() != nil {
		key = fn.Pkg().Path() + "." + key
	}
	return key
}

// staticCallee resolves a call expression to the *types.Func it statically
// invokes, or nil for dynamic calls, conversions, builtins and method calls
// through interfaces.
func staticCallee(pkg *Package, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, ok := pkg.Info.Uses[id].(*types.Func)
	if !ok {
		return nil
	}
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil && types.IsInterface(recv.Type()) {
		return nil // dynamic dispatch: not a static edge
	}
	return fn
}

// calleeName renders a function object with its receiver type, if any.
func calleeName(fn *types.Func) string {
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok {
			return n.Obj().Name() + "." + fn.Name()
		}
	}
	return fn.Name()
}
