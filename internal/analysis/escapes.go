package analysis

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// The escape-budget gate closes the loop the AST analyzers cannot: hotalloc
// bans allocation *syntax* in hot loops, but the compiler's escape analysis
// is the ground truth for what actually reaches the heap (a temporary the
// inliner eliminates costs nothing; an innocuous-looking closure capture
// costs an allocation per call). `mwlint -escapes` runs `go build
// -gcflags=-m` over the hot packages, keeps the "escapes to heap" /
// "moved to heap" diagnostics that land inside a loop of a //mw:hotpath
// function, and diffs them against a checked-in baseline. Any new entry
// fails CI; `-update` regenerates the baseline after a deliberate,
// understood change.
//
// Baseline entries are keyed by file and enclosing function, not line
// number, so unrelated edits to a file do not churn the baseline.

// EscapeGate configures one gate run.
type EscapeGate struct {
	ModuleRoot string
	Patterns   []string // package patterns whose hot functions are gated
	Baseline   string   // path to the checked-in baseline file
}

// DefaultEscapeGate gates the packages the paper's §V analysis identifies as
// allocation-sensitive.
func DefaultEscapeGate(moduleRoot string) *EscapeGate {
	return &EscapeGate{
		ModuleRoot: moduleRoot,
		Patterns: []string{
			"./internal/forces", "./internal/cells", "./internal/core", "./internal/pool",
			"./internal/telemetry", "./internal/atom", "./internal/tracing",
		},
		Baseline: filepath.Join(moduleRoot, "internal", "analysis", "testdata", "escapes.baseline"),
	}
}

// EscapeDiag is one escape-analysis diagnostic from the compiler.
type EscapeDiag struct {
	File string // path as printed by the compiler (module-root relative)
	Line int
	Col  int
	Msg  string
}

// Key is the baseline identity of the diagnostic once attributed to a
// function: "file: func: message".
func (d EscapeDiag) Key(fn string) string {
	return fmt.Sprintf("%s: %s: %s", d.File, fn, d.Msg)
}

// EscapeReport is the outcome of a gate run.
type EscapeReport struct {
	InScope []string // all hot-loop escape keys observed this run
	New     []string // observed but not in the baseline — the gate failure
	Stale   []string // in the baseline but no longer observed
}

// Failed reports whether the run found escapes not covered by the baseline.
func (r *EscapeReport) Failed() bool { return len(r.New) > 0 }

var escapeLineRE = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.*)$`)

// ParseEscapeDiags extracts heap-escape diagnostics from raw
// `go build -gcflags=-m` output. Inlining chatter, leaking-param notes and
// `# package` headers are dropped.
func ParseEscapeDiags(out string) []EscapeDiag {
	var diags []EscapeDiag
	for _, line := range strings.Split(out, "\n") {
		m := escapeLineRE.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		msg := m[4]
		if !strings.Contains(msg, "escapes to heap") && !strings.Contains(msg, "moved to heap") {
			continue
		}
		ln, _ := strconv.Atoi(m[2])
		col, _ := strconv.Atoi(m[3])
		diags = append(diags, EscapeDiag{File: m[1], Line: ln, Col: col, Msg: msg})
	}
	return diags
}

// hotLoopIndex maps source lines to the enclosing hot function when the line
// sits inside a loop of that function.
type hotLoopIndex struct {
	// byFile[file] holds (funcName, loop line range) triples.
	byFile map[string][]hotLoopRange
}

type hotLoopRange struct {
	fn       string
	lo, hi   int // loop statement line span, inclusive
	fnLo     int // function start line (for stable attribution)
	fnHiLine int
}

// funcAt returns the hot function owning a loop that spans the line.
func (ix *hotLoopIndex) funcAt(file string, line int) (string, bool) {
	for suffix, ranges := range ix.byFile {
		if file != suffix && !strings.HasSuffix(file, "/"+suffix) && !strings.HasSuffix(suffix, "/"+file) {
			continue
		}
		for _, r := range ranges {
			if line >= r.lo && line <= r.hi {
				return r.fn, true
			}
		}
	}
	return "", false
}

// buildHotLoopIndex parses the gated packages (syntax only) and records the
// loop line ranges of every //mw:hotpath function.
func (g *EscapeGate) buildHotLoopIndex() (*hotLoopIndex, error) {
	listed, err := goList(g.ModuleRoot, append([]string{"-json=ImportPath,Dir,GoFiles"}, g.Patterns...)...)
	if err != nil {
		return nil, err
	}
	ix := &hotLoopIndex{byFile: map[string][]hotLoopRange{}}
	fset := token.NewFileSet()
	for _, lp := range listed {
		for _, name := range lp.GoFiles {
			path := filepath.Join(lp.Dir, name)
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, err
			}
			rel, err := filepath.Rel(g.ModuleRoot, path)
			if err != nil {
				rel = path
			}
			rel = filepath.ToSlash(rel)
			for _, fd := range FuncsWithDirective(f, HotPathDirective) {
				if fd.Body == nil {
					continue
				}
				fnName := fd.Name.Name
				fnLo := fset.Position(fd.Pos()).Line
				fnHi := fset.Position(fd.End()).Line
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					switch n.(type) {
					case *ast.ForStmt, *ast.RangeStmt:
						ix.byFile[rel] = append(ix.byFile[rel], hotLoopRange{
							fn:       fnName,
							lo:       fset.Position(n.Pos()).Line,
							hi:       fset.Position(n.End()).Line,
							fnLo:     fnLo,
							fnHiLine: fnHi,
						})
					}
					return true
				})
			}
		}
	}
	return ix, nil
}

// compilerEscapeOutput runs the compiler with escape-analysis diagnostics
// over the gated packages. The build cache replays diagnostics for cached
// compilations, so repeat runs stay fast.
func (g *EscapeGate) compilerEscapeOutput() (string, error) {
	args := append([]string{"build", "-gcflags=-m"}, g.Patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = g.ModuleRoot
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	if err := cmd.Run(); err != nil {
		return "", fmt.Errorf("go %s: %v\n%s", strings.Join(args, " "), err, buf.String())
	}
	return buf.String(), nil
}

// Check runs the gate: compile, attribute diagnostics to hot loops, diff
// against the baseline. With update=true the baseline file is rewritten to
// the observed set and the report never fails.
func (g *EscapeGate) Check(update bool) (*EscapeReport, error) {
	out, err := g.compilerEscapeOutput()
	if err != nil {
		return nil, err
	}
	ix, err := g.buildHotLoopIndex()
	if err != nil {
		return nil, err
	}
	report := &EscapeReport{}
	seen := map[string]bool{}
	for _, d := range ParseEscapeDiags(out) {
		fn, ok := ix.funcAt(d.File, d.Line)
		if !ok {
			continue
		}
		key := d.Key(fn)
		if !seen[key] {
			seen[key] = true
			report.InScope = append(report.InScope, key)
		}
	}
	sort.Strings(report.InScope)

	if update {
		return report, g.writeBaseline(report.InScope)
	}
	baseline, err := g.readBaseline()
	if err != nil {
		return nil, err
	}
	for _, key := range report.InScope {
		if !baseline[key] {
			report.New = append(report.New, key)
		}
	}
	for key := range baseline {
		if !seen[key] {
			report.Stale = append(report.Stale, key)
		}
	}
	sort.Strings(report.Stale)
	return report, nil
}

func (g *EscapeGate) readBaseline() (map[string]bool, error) {
	data, err := os.ReadFile(g.Baseline)
	if err != nil {
		return nil, fmt.Errorf("escape baseline (run `mwlint -escapes -update` to create it): %w", err)
	}
	set := map[string]bool{}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		set[line] = true
	}
	return set, nil
}

func (g *EscapeGate) writeBaseline(keys []string) error {
	var b strings.Builder
	b.WriteString("# Escape-analysis baseline for //mw:hotpath loops.\n")
	b.WriteString("# One `file: func: message` entry per tolerated heap escape inside a hot\n")
	b.WriteString("# loop. Regenerate with `go run ./cmd/mwlint -escapes -update` after a\n")
	b.WriteString("# deliberate change; `mwlint -escapes` fails CI on any entry not listed.\n")
	for _, k := range keys {
		b.WriteString(k + "\n")
	}
	return os.WriteFile(g.Baseline, []byte(b.String()), 0o644)
}
