package analysis

import "testing"

func TestLatchCheck(t *testing.T) {
	RunFixtureTest(t, LatchCheck, "testdata/latchcheck")
}
