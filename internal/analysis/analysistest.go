package analysis

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// RunFixtureTest loads the fixture package in dir (relative to the enclosing
// module root), runs the analyzer over it, and checks the diagnostics against
// `// want "regexp"` comments in the fixture sources — the same contract as
// golang.org/x/tools/go/analysis/analysistest, reimplemented on the local
// driver.
//
// A want comment expects its line to produce one diagnostic per quoted
// regexp; lines without a want comment must be silent.
func RunFixtureTest(t *testing.T, a *Analyzer, dir string) {
	t.Helper()
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := LoadDir(root, dir, "mwlint.fixture/"+a.Name)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	diags, err := Run([]*Package{pkg}, []*Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}

	// line key → unmatched expectations / reported diagnostics.
	type key struct {
		file string
		line int
	}
	wants := map[key][]*regexp.Regexp{}
	for _, f := range pkg.Files {
		fileName := pkg.Fset.Position(f.Pos()).Filename
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				patterns, ok := parseWant(c.Text)
				if !ok {
					continue
				}
				k := key{fileName, pkg.Fset.Position(c.Pos()).Line}
				for _, p := range patterns {
					rx, err := regexp.Compile(p)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", fileName, k.line, p, err)
					}
					wants[k] = append(wants[k], rx)
				}
			}
		}
	}

	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		exp := wants[k]
		matched := -1
		for i, rx := range exp {
			if rx.MatchString(d.Message) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("%s: unexpected diagnostic: %s", d.Pos, d.Message)
			continue
		}
		wants[k] = append(exp[:matched], exp[matched+1:]...)
	}
	for k, exp := range wants {
		for _, rx := range exp {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, rx)
		}
	}
}

// parseWant extracts the quoted regexps from a `// want "..." "..."` comment.
func parseWant(comment string) ([]string, bool) {
	text := strings.TrimSpace(strings.TrimPrefix(comment, "//"))
	if !strings.HasPrefix(text, "want ") {
		return nil, false
	}
	rest := strings.TrimSpace(text[len("want "):])
	var out []string
	for rest != "" {
		if rest[0] != '"' && rest[0] != '`' {
			return nil, false
		}
		prefix, err := quotedPrefix(rest)
		if err != nil {
			return nil, false
		}
		unq, err := strconv.Unquote(prefix)
		if err != nil {
			return nil, false
		}
		out = append(out, unq)
		rest = strings.TrimSpace(rest[len(prefix):])
	}
	return out, len(out) > 0
}

// quotedPrefix returns the leading quoted string literal of s.
func quotedPrefix(s string) (string, error) {
	quote := s[0]
	for i := 1; i < len(s); i++ {
		switch {
		case s[i] == '\\' && quote == '"':
			i++
		case s[i] == quote:
			return s[:i+1], nil
		}
	}
	return "", fmt.Errorf("unterminated quote in %q", s)
}
