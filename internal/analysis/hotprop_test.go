package analysis

import "testing"

func TestHotProp(t *testing.T) {
	RunFixtureTest(t, HotProp, "testdata/hotprop")
}
