// Fixture for the privforce analyzer: the privatized-force invariant from
// paper §II-B — worker tasks never write the shared System.Force array.
package privforce

import (
	"mw/internal/atom"
	"mw/internal/pool"
	"mw/internal/vec"
)

// racyForcePhase is PR 1's stale-force bug reintroduced: tasks accumulate
// straight into the shared array with no mutex and no privatization.
func racyForcePhase(ex pool.Executor, s *atom.System, chunks [][2]int) {
	latch := pool.NewLatch(len(chunks))
	for _, ch := range chunks {
		ch := ch
		ex.Execute(func() {
			for i := ch[0]; i < ch[1]; i++ {
				s.Force[i] = s.Force[i].Add(vec.New(1, 0, 0)) // want `write to shared System.Force from a task body`
			}
			latch.CountDown()
		})
	}
	latch.Await()
}

// aliasedForce binds the shared slice inside the task, which is the same
// race with one extra step.
func aliasedForce(ex pool.Executor, s *atom.System) {
	ex.Execute(func() {
		f := s.Force // want `aliasing shared System.Force inside a task body grants unsynchronized write access`
		f[0] = vec.Zero
	})
}

// passedForce hands the shared array to an accumulator from a goroutine.
func passedForce(s *atom.System, accumulate func([]vec.Vec3)) {
	go func() {
		accumulate(s.Force) // want `passing shared System.Force to a call inside a task body`
	}()
}

// serialWriteIsFine: outside any func literal the engine is single-threaded
// (setup, verification, serial fallback paths).
func serialWriteIsFine(s *atom.System) {
	for i := range s.Force {
		s.Force[i] = vec.Zero
	}
}

// privatizedIsFine is the sanctioned §II-B shape: each worker owns a private
// array; no shared writes from the task body.
func privatizedIsFine(ex pool.Executor, s *atom.System, priv [][]vec.Vec3) {
	latch := pool.NewLatch(len(priv))
	for w := range priv {
		w := w
		ex.Execute(func() {
			f := priv[w]
			for i := range f {
				f[i] = f[i].Add(vec.New(0, 1, 0))
			}
			latch.CountDown()
		})
	}
	latch.Await()
}

// halfListMirroredWrite is the Newton-3 trap specific to half neighbor
// lists: the owner's write to its own range looks disjoint, but the mirrored
// f[j] write lands in other workers' ranges — done on the shared array
// instead of a private one, it races exactly like racyForcePhase, just
// hidden behind the pair loop. This is why the engine's half-list kernels
// take a caller-provided f (per-worker private in privatized mode).
func halfListMirroredWrite(ex pool.Executor, s *atom.System, pairs [][2]int32) {
	latch := pool.NewLatch(1)
	ex.Execute(func() {
		for _, p := range pairs {
			i, j := p[0], p[1]
			s.Force[i] = s.Force[i].Add(vec.New(0, 0, 1))  // want `write to shared System.Force from a task body`
			s.Force[j] = s.Force[j].Add(vec.New(0, 0, -1)) // want `write to shared System.Force from a task body`
		}
		latch.CountDown()
	})
	latch.Await()
}

// reduce is a sanctioned reduction entry point: the annotation records that
// its task bodies partition Force disjointly.
//
//mw:forcewriter
func reduce(ex pool.Executor, s *atom.System, priv [][]vec.Vec3, chunks [][2]int) {
	latch := pool.NewLatch(len(chunks))
	for _, ch := range chunks {
		ch := ch
		ex.Execute(func() {
			for i := ch[0]; i < ch[1]; i++ {
				f := priv[0][i]
				for w := 1; w < len(priv); w++ {
					f = f.Add(priv[w][i])
				}
				s.Force[i] = f // sanctioned by //mw:forcewriter
			}
			latch.CountDown()
		})
	}
	latch.Await()
}
