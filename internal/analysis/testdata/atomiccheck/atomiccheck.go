// Fixture for the atomiccheck analyzer: mixed atomic/plain access to the
// same word, and single-writer ring-cursor discipline via //mw:ring.
package atomiccheck

import "sync/atomic"

// counters mixes function-style atomics with plain access — the race the
// mixed-access rule exists for. The typed atomic.Int64 field is immune by
// construction and never flagged.
type counters struct {
	steals int64
	parks  atomic.Int64
}

func (c *counters) recordSteal() {
	atomic.AddInt64(&c.steals, 1) // establishes: steals is an atomic word
	c.parks.Add(1)                // typed atomic: clean
}

func (c *counters) report() int64 {
	n := c.steals // want "plain read of steals, which is accessed with sync/atomic at .*atomiccheck.go:16:2"
	return n + c.parks.Load()
}

func (c *counters) reset() {
	c.steals = 0 // want "plain write to steals, which is accessed with sync/atomic"
}

func (c *counters) alias() *int64 {
	return &c.steals // want "plain write to steals, which is accessed with sync/atomic"
}

// ring is the telemetry-style single-producer ring: exactly one function may
// advance the cursor.
type ring struct {
	//mw:ring(writer=push)
	head  atomic.Uint64
	slots []atomic.Uint64
}

func (r *ring) push(w uint64) {
	h := r.head.Load()
	r.slots[int(h)%len(r.slots)].Store(w)
	r.head.Store(h + 1) // declared writer: clean
}

func (r *ring) snapshot() uint64 {
	return r.head.Load() // loads never write: clean
}

func (r *ring) rewind() {
	r.head.Store(0) // want "ring cursor head written in rewind, outside its declared writer set \\(push\\)"
}

// fnRing uses the function-style atomics on its cursor; both rules apply to
// it at once.
type fnRing struct {
	cursor uint64 //mw:ring(writer=advance)
}

func (r *fnRing) advance() {
	atomic.AddUint64(&r.cursor, 1) // declared writer: clean
}

func (r *fnRing) clobber() {
	atomic.StoreUint64(&r.cursor, 0) // want "ring cursor cursor written in clobber, outside its declared writer set \\(advance\\)"
}

// broken carries a malformed directive.
type broken struct {
	//mw:ring(cursor=bad)
	bad int64 // want "malformed //mw:ring directive: expected writer=<func>\\[,<func>...\\]"
}
