// Fixture for the hotalloc analyzer: per-iteration allocation in annotated
// hot loops, mirroring the shapes of the real force kernels.
package hotalloc

import (
	"fmt"

	"mw/internal/vec"
)

type result struct {
	PE float64
}

type sink interface{ Consume(any) }

// accumulate mimics forces.LJ.AccumulateRange with the §V-B regression
// deliberately reintroduced: a heap-escaping vec.Vec3 temporary per pair.
//
//mw:hotpath
func accumulate(pos []vec.Vec3, f []vec.Vec3) float64 {
	var pe float64
	for i := range pos {
		for j := i + 1; j < len(pos); j++ {
			d := &vec.Vec3{X: pos[j].X - pos[i].X} // want `&vec.Vec3 composite literal allocates in a loop of hot function accumulate`
			pe += d.X
			f[i] = f[i].Add(*d)
		}
	}
	return pe
}

//mw:hotpath
func perIterationSlices(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		buf := make([]int, 8)   // want `make allocates in a loop of hot function perIterationSlices`
		pair := []int{i, i + 1} // want `\[\]int literal allocates in a loop of hot function perIterationSlices`
		total += buf[0] + pair[0]
	}
	return total
}

//mw:hotpath
func perIterationClosures(n int, run func(func())) {
	for i := 0; i < n; i++ {
		i := i
		run(func() { _ = i }) // want `closure allocated in a loop of hot function perIterationClosures`
	}
}

//mw:hotpath
func boxing(vals []float64, s sink) string {
	msg := ""
	for _, v := range vals {
		s.Consume(v)          // want `passing float64 as .* boxes it on the heap in hot function boxing`
		msg = fmt.Sprint("x") // constant argument: no boxing, no finding
	}
	return msg
}

//mw:hotpath
func explicitConversion(vals []result) any {
	var a any
	for _, v := range vals {
		a = any(v) // want `conversion to .* boxes .*result on the heap in hot function explicitConversion`
	}
	return a
}

// Allocation outside the loop is the sanctioned once-per-call reuse idiom.
//
//mw:hotpath
func reuseIsAllowed(pos []vec.Vec3, buf []int32) []int32 {
	if cap(buf) < len(pos) {
		buf = make([]int32, 0, len(pos)) // outside any loop: allowed
	}
	buf = buf[:0]
	for i := range pos {
		buf = append(buf, int32(i)) // amortized append: allowed
	}
	return buf
}

// Un-annotated functions may allocate freely.
func coldPath(n int) []*result {
	var out []*result
	for i := 0; i < n; i++ {
		out = append(out, &result{PE: float64(i)})
	}
	return out
}
