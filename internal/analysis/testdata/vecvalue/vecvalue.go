// Fixture for the vecvalue analyzer: vec.Vec3 is a value type (vec package
// doc, paper §V-B); pointers to it reintroduce the Java wrapper objects.
package vecvalue

import "mw/internal/vec"

type particle struct {
	Pos vec.Vec3  // value field: correct
	Vel *vec.Vec3 // want `\*mw/internal/vec.Vec3 in a signature or struct: pass vec.Vec3 by value`
}

var scratch *vec.Vec3 // want `\*mw/internal/vec.Vec3 variable: keep vec.Vec3 as a value`

func displace(p *vec.Vec3, d vec.Vec3) { // want `\*mw/internal/vec.Vec3 in a signature or struct: pass vec.Vec3 by value`
	*p = p.Add(d)
}

func newOrigin() *vec.Vec3 { // want `\*mw/internal/vec.Vec3 in a signature or struct: pass vec.Vec3 by value`
	return new(vec.Vec3) // want `new\(vec.Vec3\) heap-allocates a 3-float wrapper; declare a value`
}

func wrapperObject() *vec.Vec3 { // want `\*mw/internal/vec.Vec3 in a signature or struct: pass vec.Vec3 by value`
	return &vec.Vec3{X: 1} // want `&vec.Vec3\{...\} allocates the paper's 3-float wrapper object; use a value`
}

func addressOfValue(pos []vec.Vec3) {
	p := &pos[0] // want `taking the address of a vec.Vec3 forces it off the register path`
	p.X = 2
}

func pointerSlice(n int) []*vec.Vec3 { // want `\[\]\*mw/internal/vec.Vec3 in a signature or struct: pass vec.Vec3 by value`
	return nil
}

// Values everywhere is the sanctioned shape.
func valuesAreFine(pos []vec.Vec3, d vec.Vec3) vec.Vec3 {
	out := vec.Zero
	for i := range pos {
		pos[i] = pos[i].Add(d)
		out = out.Add(pos[i])
	}
	return out
}
