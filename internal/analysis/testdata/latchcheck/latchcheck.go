// Fixture for the latchcheck analyzer: the latch/barrier discipline of the
// paper's phase structure (fan out, count down, await).
package latchcheck

import (
	"sync"

	"mw/internal/pool"
)

// correctPhase is the sanctioned §II-B shape: latch count equals spawned
// tasks, every task counts down. No findings.
func correctPhase(ex pool.Executor, chunks []pool.Task) {
	latch := pool.NewLatch(len(chunks))
	for _, c := range chunks {
		c := c
		ex.Execute(func() {
			c()
			latch.CountDown()
		})
	}
	latch.Await()
}

// wrongCollection counts one collection but spawns over another — the count
// mismatch that leaves Await hanging (or releases it early).
func wrongCollection(ex pool.Executor, chunks, extras []pool.Task) {
	latch := pool.NewLatch(len(chunks)) // want `latch latch counts len\(chunks\) but its CountDown tasks are spawned ranging over extras`
	for _, c := range extras {
		c := c
		ex.Execute(func() {
			c()
			latch.CountDown()
		})
	}
	latch.Await()
}

// wrongConstant counts 3 but spawns 4 workers.
func wrongConstant(ex pool.Executor) {
	latch := pool.NewLatch(3) // want `latch latch counts 3 but the spawning loop runs 4 iterations`
	for w := 0; w < 4; w++ {
		ex.Execute(func() {
			latch.CountDown()
		})
	}
	latch.Await()
}

// wrongBound counts n but bounds the spawning loop by m.
func wrongBound(ex pool.Executor, n, m int) {
	latch := pool.NewLatch(n) // want `latch latch counts n but the spawning loop is bounded by m`
	for w := 0; w < m; w++ {
		ex.Execute(func() {
			latch.CountDown()
		})
	}
	latch.Await()
}

// neverCounted awaits a latch nothing will ever count down.
func neverCounted() {
	latch := pool.NewLatch(1) // want `latch latch is Awaited but never CountDowned and never escapes: Await deadlocks`
	latch.Await()
}

// zeroLatch synchronizes nothing.
func zeroLatch() {
	latch := pool.NewLatch(0) // want `latch initialized to 0: Await returns immediately, synchronizing nothing`
	latch.Await()
	_ = latch
}

// badBarrier panics at construction.
func badBarrier() *pool.CyclicBarrier {
	return pool.NewBarrier(0) // want `barrier party count 0: NewBarrier panics for counts < 1`
}

// escapingLatchIsFine hands the latch to a helper; counting may happen there.
func escapingLatchIsFine(register func(*pool.CountDownLatch)) {
	latch := pool.NewLatch(1)
	register(latch)
	latch.Await()
}

// copies demonstrates the by-value rules.
func copies(l pool.CountDownLatch) { // want `parameter mw/internal/pool.CountDownLatch by value copies its internal lock`
	_ = l
}

func copyByDeref(l *pool.CountDownLatch) {
	c := *l // want `dereference copies mw/internal/pool.CountDownLatch and its internal lock`
	_ = c
}

func rangeCopies(barriers []pool.CyclicBarrier) {
	for _, b := range barriers { // want `range copies mw/internal/pool.CyclicBarrier elements and their internal locks; iterate by index`
		_ = b
	}
}

type guarded struct {
	mu sync.Mutex
	n  int
}

func copyGuarded(g guarded) int { // want `parameter .*latchcheck.guarded by value copies its internal lock`
	return g.n
}

// Pointers are the correct spelling everywhere.
func pointersAreFine(l *pool.CountDownLatch, b *pool.CyclicBarrier, g *guarded) {
	l.CountDown()
	_ = b.Parties()
	g.mu.Lock()
	g.mu.Unlock()
}
