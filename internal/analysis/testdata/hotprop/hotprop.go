// Fixture for the hotprop analyzer: transitive //mw:hotpath propagation.
// Every function a hot root calls must itself be //mw:hotpath (gated) or
// //mw:coldcall (sanctioned slow path); dynamic edges and out-of-module
// calls are exempt.
package hotprop

import "math"

// Pair is a toy kernel operand.
type Pair struct{ A, B float64 }

// annotatedLeaf is already inside the gates: calling it is fine.
//
//mw:hotpath
func annotatedLeaf(x float64) float64 { return x * x }

// sanctionedSlow is a declared slow path: calling it is fine too.
//
//mw:coldcall
func sanctionedSlow(x float64) float64 { return math.Exp(x) }

// unannotatedHelper has no annotation, so a hot caller must be flagged.
func unannotatedHelper(x float64) float64 { return x + 1 }

// scale is an unannotated method; the diagnostic names it with its
// receiver type.
func (p Pair) scale(s float64) Pair { return Pair{p.A * s, p.B * s} }

// secondLevel is hot and leaks: the closure requirement is transitive, so
// hot callees get walked exactly like the roots.
//
//mw:hotpath
func secondLevel(x float64) float64 {
	return unannotatedHelper(x) // want "hot function secondLevel calls unannotated unannotatedHelper"
}

// op abstracts a kernel step; interface dispatch is not a static edge.
type op interface{ apply(float64) float64 }

// kernel is the hot root exercising every edge kind.
//
//mw:hotpath
func kernel(p Pair, o op, fn func(float64) float64) float64 {
	s := annotatedLeaf(p.A)     // annotated callee: clean
	s += sanctionedSlow(p.B)    // coldcall callee: clean
	s += math.Sqrt(s)           // out-of-module callee: clean
	s += o.apply(s)             // dynamic dispatch: clean
	s += fn(s)                  // function value: clean
	s += unannotatedHelper(s)   // want "hot function kernel calls unannotated unannotatedHelper; mark it //mw:hotpath \\(gated\\) or //mw:coldcall \\(sanctioned slow path\\)"
	q := p.scale(s)             // want "hot function kernel calls unannotated Pair.scale"
	s += unannotatedHelper(q.A) // repeated edge: deduplicated, no second diagnostic
	return s + secondLevel(s)
}

// coldCaller is not annotated at all, so nothing it calls is checked.
func coldCaller(x float64) float64 { return unannotatedHelper(x) }
