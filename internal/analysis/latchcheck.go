package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// LatchCheck enforces the latch/barrier discipline the paper's phase
// structure depends on (§II-B: fan work out, count down a latch, await the
// latch). It reports:
//
//   - copying a CountDownLatch, CyclicBarrier, or any other value whose type
//     transitively contains a sync lock, by parameter, assignment, or range
//     (a copied latch has its own counter: waiters on the original hang);
//   - pool.NewLatch(0) and pool.NewBarrier(n<=0) with constant argument
//     (Await returns immediately / constructor panics);
//   - a latch that is created locally, Awaited, and never CountDowned nor
//     passed anywhere that could count it down — a guaranteed deadlock;
//   - provable count mismatches: the latch is initialized to len(X) or a
//     constant, but the loop spawning the CountDown closures iterates over a
//     different collection or a different constant trip count.
var LatchCheck = &Analyzer{
	Name: "latchcheck",
	Doc:  "flags CountDownLatch/CyclicBarrier misuse and copied synchronizers",
	Run:  runLatchCheck,
}

const poolPkgPath = "mw/internal/pool"

func runLatchCheck(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkSyncCopies(pass, fd)
			checkLatchLifecycles(pass, fd)
		}
	}
	return nil
}

// --- rule 1: synchronizers must not travel by value -------------------------

func checkSyncCopies(pass *Pass, fd *ast.FuncDecl) {
	check := func(fields *ast.FieldList, what string) {
		if fields == nil {
			return
		}
		for _, field := range fields.List {
			t := pass.Info.TypeOf(field.Type)
			if t != nil && containsLock(t) {
				pass.Reportf(field.Type.Pos(), "%s %s by value copies its internal lock; use a pointer", what, t)
			}
		}
	}
	check(fd.Recv, "receiver")
	check(fd.Type.Params, "parameter")
	check(fd.Type.Results, "result")

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				// x := *latch and friends: an explicit dereference copy.
				if u, ok := ast.Unparen(rhs).(*ast.StarExpr); ok {
					if t := pass.Info.TypeOf(u); t != nil && containsLock(t) {
						pass.Reportf(rhs.Pos(), "dereference copies %s and its internal lock", t)
					}
				}
			}
		case *ast.RangeStmt:
			if n.Value != nil {
				if t := pass.Info.TypeOf(n.Value); t != nil && containsLock(t) {
					pass.Reportf(n.Value.Pos(), "range copies %s elements and their internal locks; iterate by index", t)
				}
			}
		}
		return true
	})
}

// containsLock reports whether t (not a pointer to t) transitively contains
// a sync primitive or pool synchronizer that must not be copied.
func containsLock(t types.Type) bool {
	seen := map[types.Type]bool{}
	var walk func(t types.Type) bool
	walk = func(t types.Type) bool {
		if seen[t] {
			return false
		}
		seen[t] = true
		if named, ok := t.(*types.Named); ok {
			obj := named.Obj()
			if pkg := obj.Pkg(); pkg != nil {
				switch pkg.Path() {
				case "sync":
					switch obj.Name() {
					case "Mutex", "RWMutex", "WaitGroup", "Cond", "Once", "Pool", "Map":
						return true
					}
				case poolPkgPath:
					switch obj.Name() {
					case "CountDownLatch", "CyclicBarrier":
						return true
					}
				}
			}
			return walk(named.Underlying())
		}
		switch t := t.(type) {
		case *types.Struct:
			for i := 0; i < t.NumFields(); i++ {
				if walk(t.Field(i).Type()) {
					return true
				}
			}
		case *types.Array:
			return walk(t.Elem())
		}
		return false
	}
	return walk(t)
}

// --- rules 2-4: latch lifecycle within one function -------------------------

// latchUse gathers everything a function does with one locally created latch.
type latchUse struct {
	arg        ast.Expr // NewLatch argument
	awaits     int
	countDowns []*ast.CallExpr
	escapes    bool // passed, stored, or returned: counting may happen elsewhere
}

func checkLatchLifecycles(pass *Pass, fd *ast.FuncDecl) {
	latches := map[types.Object]*latchUse{}

	// Pass A: find `l := pool.NewLatch(n)` creations and constant-arg misuse.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeOf(pass, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != poolPkgPath {
			return true
		}
		switch fn.Name() {
		case "NewLatch":
			if len(call.Args) == 1 {
				if v, ok := constIntArg(pass, call.Args[0]); ok && v == 0 {
					pass.Reportf(call.Pos(), "latch initialized to 0: Await returns immediately, synchronizing nothing")
				}
			}
		case "NewBarrier":
			if len(call.Args) == 1 {
				if v, ok := constIntArg(pass, call.Args[0]); ok && v <= 0 {
					pass.Reportf(call.Pos(), "barrier party count %d: NewBarrier panics for counts < 1", v)
				}
			}
		}
		return true
	})

	// Creations assigned to a fresh local: `l := pool.NewLatch(n)`.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true
		}
		fn := calleeOf(pass, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != poolPkgPath || fn.Name() != "NewLatch" {
			return true
		}
		if obj := pass.Info.Defs[id]; obj != nil {
			latches[obj] = &latchUse{arg: call.Args[0]}
		}
		return true
	})
	if len(latches) == 0 {
		return
	}

	// Pass B: classify every use of each latch object.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.Info.Uses[id]
		use, tracked := latches[obj]
		if !tracked {
			return true
		}
		switch method := methodCallOn(pass, fd.Body, id); method {
		case "Await":
			use.awaits++
		case "CountDown":
			use.countDowns = append(use.countDowns, nil)
		case "Count":
			// read-only
		default:
			use.escapes = true // argument, assignment, field store, return, ...
		}
		return true
	})

	for obj, use := range latches {
		if use.awaits > 0 && len(use.countDowns) == 0 && !use.escapes {
			pass.Reportf(use.arg.Pos(),
				"latch %s is Awaited but never CountDowned and never escapes: Await deadlocks", obj.Name())
		}
	}

	checkLatchCounts(pass, fd, latches)
}

// checkLatchCounts compares the latch's initial count with the trip count of
// the loop that spawns its CountDown closures, reporting only provable
// mismatches.
func checkLatchCounts(pass *Pass, fd *ast.FuncDecl, latches map[types.Object]*latchUse) {
	for obj, use := range latches {
		if use.escapes {
			continue
		}
		loops := countDownLoops(pass, fd, obj)
		if len(loops) != 1 {
			continue // zero or ambiguous spawn sites: stay silent
		}
		loop := loops[0]
		switch arg := ast.Unparen(use.arg).(type) {
		case *ast.CallExpr: // NewLatch(len(X))
			lenOf := lenArgObj(pass, arg)
			if lenOf == nil {
				continue
			}
			if rng, ok := loop.(*ast.RangeStmt); ok {
				if rngObj := exprObj(pass, rng.X); rngObj != nil && rngObj != lenOf {
					pass.Reportf(use.arg.Pos(),
						"latch %s counts len(%s) but its CountDown tasks are spawned ranging over %s",
						obj.Name(), lenOf.Name(), rngObj.Name())
				}
			}
		case *ast.BasicLit: // NewLatch(3)
			want, ok := constIntArg(pass, arg)
			if !ok {
				continue
			}
			if got, ok := constTripCount(pass, loop); ok && got != want {
				pass.Reportf(use.arg.Pos(),
					"latch %s counts %d but the spawning loop runs %d iterations", obj.Name(), want, got)
			}
		case *ast.Ident: // NewLatch(n)
			if f, ok := loop.(*ast.ForStmt); ok {
				if bound := forUpperBound(f); bound != nil {
					bObj := exprObj(pass, bound)
					aObj := pass.Info.Uses[arg]
					if bObj != nil && aObj != nil && bObj != aObj {
						// Same spelled variable is fine; two different locals
						// with possibly different values is the §II-B bug.
						if bound, ok := bound.(*ast.Ident); ok && bound.Name != arg.Name {
							pass.Reportf(use.arg.Pos(),
								"latch %s counts %s but the spawning loop is bounded by %s",
								obj.Name(), arg.Name, bound.Name)
						}
					}
				}
			}
		}
	}
}

// countDownLoops returns the loops in fd that contain a closure calling
// obj.CountDown (the spawn-site shape of schedule/RunPhase).
func countDownLoops(pass *Pass, fd *ast.FuncDecl, obj types.Object) []ast.Stmt {
	var out []ast.Stmt
	seen := map[ast.Stmt]bool{}
	var stack []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "CountDown" {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); !ok || pass.Info.Uses[id] != obj {
			return true
		}
		// Require the CountDown to sit inside a func literal (a task body)
		// and find the innermost loop outside that literal.
		inClosure := false
		for i := len(stack) - 1; i >= 0; i-- {
			switch s := stack[i].(type) {
			case *ast.FuncLit:
				inClosure = true
			case *ast.ForStmt, *ast.RangeStmt:
				if inClosure {
					if loop := s.(ast.Stmt); !seen[loop] {
						seen[loop] = true
						out = append(out, loop)
					}
					return true
				}
			}
		}
		return true
	})
	return out
}

// --- small syntax/type helpers ----------------------------------------------

func calleeOf(pass *Pass, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return pass.Info.Uses[fun]
	case *ast.SelectorExpr:
		return pass.Info.Uses[fun.Sel]
	}
	return nil
}

func constIntArg(pass *Pass, e ast.Expr) (int64, bool) {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	return constant.Int64Val(tv.Value)
}

// lenArgObj returns the object X in a len(X) call, or nil.
func lenArgObj(pass *Pass, call *ast.CallExpr) types.Object {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || len(call.Args) != 1 {
		return nil
	}
	if b, ok := pass.Info.Uses[id].(*types.Builtin); !ok || b.Name() != "len" {
		return nil
	}
	return exprObj(pass, call.Args[0])
}

func exprObj(pass *Pass, e ast.Expr) types.Object {
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		return pass.Info.Uses[id]
	}
	return nil
}

// forUpperBound returns B in `for i := ...; i < B; ...` / `i <= B`.
func forUpperBound(f *ast.ForStmt) ast.Expr {
	cmp, ok := f.Cond.(*ast.BinaryExpr)
	if !ok {
		return nil
	}
	switch cmp.Op.String() {
	case "<", "<=":
		return cmp.Y
	}
	return nil
}

// constTripCount evaluates the trip count of `for i := a; i < b; i++` with
// constant bounds, or a range over a fixed-length array.
func constTripCount(pass *Pass, loop ast.Stmt) (int64, bool) {
	f, ok := loop.(*ast.ForStmt)
	if !ok || f.Cond == nil {
		return 0, false
	}
	cmp, ok := f.Cond.(*ast.BinaryExpr)
	if !ok || cmp.Op.String() != "<" {
		return 0, false
	}
	hi, ok := constIntArg(pass, cmp.Y)
	if !ok {
		return 0, false
	}
	lo := int64(0)
	if init, ok := f.Init.(*ast.AssignStmt); ok && len(init.Rhs) == 1 {
		if v, ok := constIntArg(pass, init.Rhs[0]); ok {
			lo = v
		} else {
			return 0, false
		}
	}
	if hi < lo {
		return 0, true
	}
	return hi - lo, true
}

// methodCallOn reports the method name when the identifier use at id is the
// receiver of a method call `id.M(...)`; otherwise "".
func methodCallOn(pass *Pass, root ast.Node, id *ast.Ident) string {
	method := ""
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if n != ast.Node(id) || method != "" {
			return true
		}
		// stack: ... CallExpr SelectorExpr Ident(id)?
		if len(stack) >= 3 {
			if sel, ok := stack[len(stack)-2].(*ast.SelectorExpr); ok && sel.X == ast.Expr(id) {
				if call, ok := stack[len(stack)-3].(*ast.CallExpr); ok && call.Fun == ast.Expr(sel) {
					method = sel.Sel.Name
				}
			}
		}
		return true
	})
	return method
}
