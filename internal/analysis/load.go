package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listedPackage is the subset of `go list -json` output the loader consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Standard   bool
	Error      *struct{ Err string }
}

// goList runs `go list` in dir with the given flags/patterns and decodes the
// JSON stream.
func goList(dir string, args ...string) ([]*listedPackage, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listedPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

const listFields = "-json=ImportPath,Dir,Export,GoFiles,DepOnly,Standard,Error"

// Load type-checks the packages matching the patterns (resolved relative to
// dir, which must lie inside a module) and returns them ready for analysis.
// Test files are not included: the analyzers guard the engine, not its tests.
//
// Dependencies are resolved through the compiler's export data, obtained via
// `go list -export` — entirely offline and toolchain-exact, which is what
// lets this package avoid a vendored copy of go/packages.
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, append([]string{"-e", "-export", "-deps", listFields}, patterns...)...)
	if err != nil {
		return nil, err
	}
	exports := exportMap(listed)
	fset := token.NewFileSet()
	imp := newExportImporter(fset, exports)

	var out []*Package
	for _, lp := range listed {
		if lp.DepOnly || lp.Standard || len(lp.GoFiles) == 0 {
			continue
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("package %s: %s", lp.ImportPath, lp.Error.Err)
		}
		var paths []string
		for _, f := range lp.GoFiles {
			paths = append(paths, filepath.Join(lp.Dir, f))
		}
		pkg, err := typeCheck(fset, imp, lp.ImportPath, lp.Dir, paths)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// LoadDir type-checks the .go files of a single directory as one package
// with the given import path, resolving imports against the module rooted at
// moduleRoot. This is the fixture loader used by RunFixtureTest: files under
// testdata/ are invisible to `go list`, but their imports of real module
// packages (mw/internal/vec, mw/internal/pool, ...) still resolve.
func LoadDir(moduleRoot, dir, importPath string) (*Package, error) {
	listed, err := goList(moduleRoot, "-e", "-export", "-deps", listFields, "./...")
	if err != nil {
		return nil, err
	}
	exports := exportMap(listed)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var paths []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			paths = append(paths, filepath.Join(dir, e.Name()))
		}
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	fset := token.NewFileSet()
	return typeCheck(fset, newExportImporter(fset, exports), importPath, dir, paths)
}

func exportMap(listed []*listedPackage) map[string]string {
	m := make(map[string]string, len(listed))
	for _, lp := range listed {
		if lp.Export != "" {
			m[lp.ImportPath] = lp.Export
		}
	}
	return m
}

func newExportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
}

func typeCheck(fset *token.FileSet, imp types.Importer, importPath, dir string, filePaths []string) (*Package, error) {
	var files []*ast.File
	for _, p := range filePaths {
		f, err := parser.ParseFile(fset, p, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", importPath, err)
	}
	return &Package{Path: importPath, Dir: dir, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// ModuleRoot walks up from dir to the enclosing go.mod directory.
func ModuleRoot(dir string) (string, error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		d = parent
	}
}
