package analysis

import "testing"

func TestAtomicCheck(t *testing.T) {
	RunFixtureTest(t, AtomicCheck, "testdata/atomiccheck")
}
