package analysis

import "testing"

func TestPrivForce(t *testing.T) {
	RunFixtureTest(t, PrivForce, "testdata/privforce")
}
