package analysis

import (
	"fmt"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// The bce gate is the bounds-check analogue of the escape-budget gate: the
// compiler's `-d=ssa/check_bce` debug output is the ground truth for which
// slice accesses still carry an IsInBounds/IsSliceInBounds check after the
// prove pass ran. A bounds check in the pair loop is a branch plus a panic
// edge the register allocator must keep alive — MD-Bench attributes a
// double-digit share of in-core kernel time to exactly this class of
// overhead — so the LJ kernels were engineered to be check-free (reslice to
// a common length, one explicit uint guard per pair, hoisted pair-table
// rows; see forces/lj.go) and `mwlint -bce` keeps them that way.
//
// Observed checks inside hot-loop code are diffed against a checked-in
// baseline keyed by `file: function: kind xN`: the gate fails on any new
// check (count above baseline or new function), warns on stale entries, and
// `-update` regenerates the file after a deliberate change. The target state
// — and the committed baseline — has no forces/lj.go entries at all.

// BCEGate configures one gate run.
type BCEGate struct {
	ModuleRoot string
	Patterns   []string
	Baseline   string
}

// DefaultBCEGate gates the same allocation-sensitive packages as the escape
// gate: the kernel surface plus the lock-free telemetry/tracing paths.
func DefaultBCEGate(moduleRoot string) *BCEGate {
	return &BCEGate{
		ModuleRoot: moduleRoot,
		Patterns: []string{
			"./internal/forces", "./internal/cells", "./internal/core", "./internal/pool",
			"./internal/telemetry", "./internal/atom", "./internal/tracing", "./internal/vec",
		},
		Baseline: filepath.Join(moduleRoot, "internal", "analysis", "testdata", "bce.baseline"),
	}
}

// BCEDiag is one bounds-check diagnostic from the compiler.
type BCEDiag struct {
	File string
	Line int
	Kind string // IsInBounds or IsSliceInBounds
}

var bceLineRE = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): Found (IsInBounds|IsSliceInBounds)$`)

// ParseBCEDiags extracts bounds-check findings from raw
// `go build -gcflags=-d=ssa/check_bce` output.
func ParseBCEDiags(out string) []BCEDiag {
	var diags []BCEDiag
	for _, line := range strings.Split(out, "\n") {
		m := bceLineRE.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		ln, _ := strconv.Atoi(m[2])
		diags = append(diags, BCEDiag{File: m[1], Line: ln, Kind: m[4]})
	}
	return diags
}

// BCEReport is the outcome of a gate run.
type BCEReport struct {
	InScope []string // "file: func: kind xN" for every hot-loop check observed
	New     []string // above baseline — the gate failure
	Stale   []string // baselined but no longer observed at that count
}

// Failed reports whether the run found checks not covered by the baseline.
func (r *BCEReport) Failed() bool { return len(r.New) > 0 }

// bceKey aggregates diagnostics per (file, function, kind). Line numbers are
// deliberately not part of the identity so unrelated edits do not churn the
// baseline; the count is, so a new check in an already-listed function still
// fails.
type bceKey struct {
	file, fn, kind string
}

func (k bceKey) entry(n int) string {
	return fmt.Sprintf("%s: %s: %s x%d", k.file, k.fn, k.kind, n)
}

var bceEntryRE = regexp.MustCompile(`^(.*\.go): ([^:]+): (IsInBounds|IsSliceInBounds) x(\d+)$`)

// Check compiles the gated packages with check_bce diagnostics, attributes
// each finding to hot-loop code (same rule as vecasm: inside a loop of an
// annotated function, or anywhere in a loop-free annotated leaf), and diffs
// the aggregated counts against the baseline.
func (g *BCEGate) Check(update bool) (*BCEReport, error) {
	ix, err := BuildHotIndex(g.ModuleRoot, g.Patterns...)
	if err != nil {
		return nil, err
	}
	out, err := CompilerOutput(g.ModuleRoot, "-d=ssa/check_bce", g.Patterns...)
	if err != nil {
		return nil, err
	}
	counts := map[bceKey]int{}
	for _, d := range ParseBCEDiags(out) {
		hf, ok := ix.FuncAt(d.File, d.Line)
		if !ok || !inHotLoop(ix, d.File, d.Line) {
			continue
		}
		counts[bceKey{file: hf.File, fn: hf.Name, kind: d.Kind}]++
	}
	rep := &BCEReport{}
	for k, n := range counts {
		rep.InScope = append(rep.InScope, k.entry(n))
	}
	sort.Strings(rep.InScope)

	if update {
		return rep, writeBaselineLines(g.Baseline, []string{
			"Bounds-check baseline for //mw:hotpath loops under GOAMD64=" + CodegenAMD64Level + ",",
			"from `go build -gcflags=-d=ssa/check_bce`. One `file: func: kind xN`",
			"entry per tolerated check; the forces/lj.go kernels carry none by",
			"design. Regenerate with `GOAMD64=v3 go run ./cmd/mwlint -bce -update`",
			"after a deliberate change; `mwlint -bce` fails CI on any check above",
			"the listed counts.",
		}, rep.InScope)
	}

	base := map[bceKey]int{}
	lines, err := readBaselineLines(g.Baseline, "mwlint -bce -update")
	if err != nil {
		return nil, err
	}
	for _, line := range lines {
		m := bceEntryRE.FindStringSubmatch(line)
		if m == nil {
			return nil, fmt.Errorf("bce baseline: malformed entry %q", line)
		}
		n, _ := strconv.Atoi(m[4])
		base[bceKey{file: m[1], fn: m[2], kind: m[3]}] = n
	}
	for k, n := range counts {
		if b := base[k]; n > b {
			rep.New = append(rep.New, fmt.Sprintf("%s (baseline %d)", k.entry(n), b))
		}
	}
	for k, b := range base {
		if counts[k] < b {
			rep.Stale = append(rep.Stale, k.entry(b))
		}
	}
	sort.Strings(rep.New)
	sort.Strings(rep.Stale)
	return rep, nil
}
