package analysis

import (
	"go/ast"
	"go/types"
)

// HotAlloc flags per-iteration heap allocation inside the loops of functions
// annotated //mw:hotpath — the Go analogue of the paper's §V-B finding that
// short-lived 3-float wrapper objects allocated in the force loops polluted
// the caches and halved throughput.
//
// Inside a loop of a hot function it reports:
//   - &T{...} composite literals (the classic escaping temporary);
//   - slice and map composite literals;
//   - make and new calls;
//   - func literals (closure allocation per iteration);
//   - implicit interface conversions of non-pointer values (boxing).
//
// Amortized growth via append into a caller-provided or capacity-guarded
// buffer is deliberately allowed: that is the engine's sanctioned reuse
// idiom (see cells.AppendNeighbors). Allocation outside loops — once per
// phase or per call — is likewise allowed; the rule targets per-pair and
// per-atom churn.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "flags heap allocation inside loops of //mw:hotpath functions",
	Run:  runHotAlloc,
}

func runHotAlloc(pass *Pass) error {
	for _, f := range pass.Files {
		for _, fd := range FuncsWithDirective(f, HotPathDirective) {
			if fd.Body == nil {
				continue
			}
			checkHotFunc(pass, fd)
		}
	}
	return nil
}

func checkHotFunc(pass *Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	WalkLoops(fd.Body, func(n ast.Node, loopDepth int) {
		if loopDepth == 0 {
			return
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if lit, ok := n.X.(*ast.CompositeLit); ok {
				pass.Reportf(n.Pos(), "&%s composite literal allocates in a loop of hot function %s",
					typeString(pass, lit), name)
			}
		case *ast.CompositeLit:
			switch pass.Info.TypeOf(n).Underlying().(type) {
			case *types.Slice, *types.Map:
				pass.Reportf(n.Pos(), "%s literal allocates in a loop of hot function %s",
					typeString(pass, n), name)
			}
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "closure allocated in a loop of hot function %s", name)
		case *ast.CallExpr:
			checkHotCall(pass, n, name)
		}
	})
}

func checkHotCall(pass *Pass, call *ast.CallExpr, hot string) {
	// Builtin allocators.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pass.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make", "new":
				pass.Reportf(call.Pos(), "%s allocates in a loop of hot function %s", b.Name(), hot)
			}
			return
		}
	}
	// Explicit conversion T(x): flag conversions *to* an interface.
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() {
		if types.IsInterface(tv.Type) && len(call.Args) == 1 && boxes(pass, call.Args[0]) {
			pass.Reportf(call.Pos(), "conversion to %s boxes %s on the heap in hot function %s",
				tv.Type, pass.Info.TypeOf(call.Args[0]), hot)
		}
		return
	}
	// Ordinary call: implicit interface conversions at the call boundary.
	sig, ok := pass.Info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // slice passed through, no per-element boxing here
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if types.IsInterface(pt) && !isTypeParam(pt) && boxes(pass, arg) {
			pass.Reportf(arg.Pos(), "passing %s as %s boxes it on the heap in hot function %s",
				pass.Info.TypeOf(arg), pt, hot)
		}
	}
}

// boxes reports whether passing arg to an interface allocates: a non-constant
// value of concrete non-pointer-shaped type does; pointers, channels, maps
// and funcs fit in the interface word, and constants become static data.
func boxes(pass *Pass, arg ast.Expr) bool {
	tv, ok := pass.Info.Types[arg]
	if !ok || tv.Value != nil { // constants are materialized statically
		return false
	}
	t := tv.Type
	if t == nil || types.IsInterface(t) {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	case *types.Basic:
		b := t.Underlying().(*types.Basic)
		return b.Kind() != types.UntypedNil
	}
	return true
}

func isTypeParam(t types.Type) bool {
	_, ok := t.(*types.TypeParam)
	return ok
}

func typeString(pass *Pass, lit *ast.CompositeLit) string {
	if t := pass.Info.TypeOf(lit); t != nil {
		return types.TypeString(t, func(p *types.Package) string { return p.Name() })
	}
	return "composite"
}
