package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// The vecasm gate closes the last gap between the source-level rules and the
// silicon: hotalloc and the escape gate prove the hot loops do not touch the
// heap, but nothing before this gate verified what the compiler actually
// *emits* for them. MD-Bench (PAPERS.md arXiv:2302.14660) shows in-core MD
// throughput lives or dies on the instruction mix of the cutoff loop, and
// ROADMAP item 1 makes "verified via -gcflags=-S" a precondition for the
// cluster-pair kernel work. `mwlint -vecasm` compiles the kernel packages
// under GOAMD64=v3, parses the assembly listing of every //mw:hotpath
// function, classifies the instructions (scalar FP arithmetic, packed
// SSE/AVX moves and arithmetic, FMA, calls), and gates on two layers:
//
//   - hard kernel invariants, configured in code so a baseline update cannot
//     weaken them: the forces.LJ half-list kernels must emit packed FP moves
//     and a healthy scalar-FP core, and must have zero CALL runtime.*
//     instructions attributed to hot-loop lines (a runtime call in the pair
//     loop means a bounds check, a heap operation, or a de-intrinsified
//     math call — all regressions);
//   - a benchdiff-style drift check of the per-function instruction mix
//     against the checked-in vecasm.baseline, so an inlining or codegen
//     regression that reshapes a kernel fails CI even when the hard
//     invariants still hold.
//
// Like the escape gate, `-update` regenerates the baseline after a
// deliberate, understood change.

// VecasmGate configures one gate run.
type VecasmGate struct {
	ModuleRoot string
	Patterns   []string // packages compiled and parsed
	Baseline   string   // checked-in per-function instruction-mix baseline
	Tolerance  float64  // relative drift allowed per instruction class
	Kernels    []KernelRule
}

// KernelRule is a hard per-function invariant, matched by symbol name.
type KernelRule struct {
	Match     *regexp.Regexp
	MinScalar int  // at least this many scalar FP arithmetic instructions
	MinPacked int  // at least this many packed (SSE/AVX) instructions
	NoRTLoop  bool // zero CALL runtime.* attributed to hot-loop lines
}

// DefaultVecasmGate gates the kernel surface: the force kernels and the cell
// traversals they inline.
func DefaultVecasmGate(moduleRoot string) *VecasmGate {
	return &VecasmGate{
		ModuleRoot: moduleRoot,
		Patterns:   []string{"./internal/forces", "./internal/cells"},
		Baseline:   filepath.Join(moduleRoot, "internal", "analysis", "testdata", "vecasm.baseline"),
		Tolerance:  0.25,
		Kernels: []KernelRule{
			// The half-list LJ ladder (ROADMAP item 1): packed moves carry the
			// Vec3 loads/stores, the scalar-FP core is the pair arithmetic, and
			// the pair loop must be free of runtime calls — the bounds checks
			// were engineered out, and this rule keeps them out.
			{
				Match:     regexp.MustCompile(`forces\.\(\*LJ\)\.AccumulateRange`),
				MinScalar: 8,
				MinPacked: 1,
				NoRTLoop:  true,
			},
			// The cluster-pair ladder: the Go kernels share the half-list
			// scalar/packed profile; the hand-written packed kernel must stay
			// genuinely packed (its 4-lane row body plus the i-force
			// horizontal sums) and call-free.
			{
				Match:     regexp.MustCompile(`forces\.\(\*LJ\)\.AccumulateClusterList$`),
				MinScalar: 8,
				MinPacked: 1,
				NoRTLoop:  true,
			},
			{
				Match:     regexp.MustCompile(`forces\.\(\*LJ\)\.AccumulateClusterListFast`),
				MinScalar: 8,
				NoRTLoop:  true,
			},
			{
				Match:     regexp.MustCompile(`forces\.ljClusterAVX2`),
				MinPacked: 40,
				NoRTLoop:  true,
			},
		},
	}
}

// AsmFunc is the parsed assembly listing of one function symbol.
type AsmFunc struct {
	Sym    string // e.g. mw/internal/forces.(*LJ).AccumulateRangeListFast
	File   string // file of the TEXT line (decl position)
	Line   int
	Mix    InstrMix
	RTLoop []RuntimeCall // CALL runtime.* at hot-loop lines
}

// InstrMix is the per-class instruction census the baseline records.
type InstrMix struct {
	Scalar int // scalar FP arithmetic (ADDSD, MULSD, SQRTSD, ROUNDSD, ...)
	Packed int // packed SSE/AVX moves + arithmetic (MOVUPS, ADDPD, ...)
	FMA    int // fused multiply-add (VFMADD*, VFMSUB*, ...)
	Call   int // CALL instructions (runtime.morestack excluded)
	RTLoop int // CALL runtime.* attributed to a hot-loop line
}

func (m InstrMix) String() string {
	return fmt.Sprintf("scalar=%d packed=%d fma=%d call=%d rtloop=%d",
		m.Scalar, m.Packed, m.FMA, m.Call, m.RTLoop)
}

// RuntimeCall is one runtime call attributed to a hot-loop source line.
type RuntimeCall struct {
	Target string
	File   string
	Line   int
}

var (
	stextRE = regexp.MustCompile(`^(\S+) STEXT`)
	instrRE = regexp.MustCompile(`^\t0x[0-9a-f]+ \d+ \(([^)]*)\)\t([A-Z][A-Z0-9]*)\t?(.*)$`)

	scalarFPRE = regexp.MustCompile(`^V?(ADD|SUB|MUL|DIV|SQRT|MIN|MAX|ROUND)S[SD]$`)
	packedRE   = regexp.MustCompile(`^V?(MOV[UA]|ADD|SUB|MUL|DIV|SQRT|MIN|MAX|AND|ANDN|OR|SHUF|UNPCK[LH]|HADD)P[SD]$`)
	fmaRE      = regexp.MustCompile(`^VFN?M(ADD|SUB)(132|213|231)?[SP][SD]$`)
)

// ParseVecasm parses `go build -gcflags=-S` output into per-symbol listings,
// attributing ownership and hot-loop membership through the index. Only
// functions whose declaration position resolves to a //mw:hotpath function
// are returned; autogenerated wrappers and cold functions are dropped.
func ParseVecasm(out string, ix *HotIndex) []*AsmFunc {
	var funcs []*AsmFunc
	var cur *AsmFunc
	var curHot *HotFunc
	flush := func() {
		if cur != nil && curHot != nil {
			funcs = append(funcs, cur)
		}
		cur, curHot = nil, nil
	}
	for _, line := range strings.Split(out, "\n") {
		if m := stextRE.FindStringSubmatch(line); m != nil {
			flush()
			cur = &AsmFunc{Sym: m[1]}
			continue
		}
		if cur == nil {
			continue
		}
		m := instrRE.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		file, ln := splitFileLine(m[1])
		op, args := m[2], m[3]
		if cur.File == "" && file != "" {
			// The TEXT line carries the declaration position: resolve the
			// owning hot function once per block.
			cur.File, cur.Line = file, ln
			hf, ok := ix.FuncAt(file, ln)
			if !ok {
				cur = nil // not a hot function; skip the rest of the block
				continue
			}
			curHot = hf
		}
		switch {
		case op == "CALL":
			target := strings.TrimSuffix(args, "(SB)")
			if i := strings.IndexByte(target, '\t'); i >= 0 {
				target = target[:i]
			}
			if strings.HasPrefix(target, "runtime.morestack") {
				continue
			}
			cur.Mix.Call++
			if strings.HasPrefix(target, "runtime.") && inHotLoop(ix, file, ln) {
				cur.Mix.RTLoop++
				cur.RTLoop = append(cur.RTLoop, RuntimeCall{Target: target, File: file, Line: ln})
			}
		case fmaRE.MatchString(op):
			cur.Mix.FMA++
		case scalarFPRE.MatchString(op):
			cur.Mix.Scalar++
		case packedRE.MatchString(op):
			cur.Mix.Packed++
		}
	}
	flush()
	sort.Slice(funcs, func(i, j int) bool { return funcs[i].Sym < funcs[j].Sym })
	return funcs
}

var asmTextRE = regexp.MustCompile(`^TEXT\s+·([A-Za-z_][A-Za-z0-9_]*)\(SB\)`)

// ParseAsmSources censuses hand-written Plan 9 assembly: every *_amd64.s
// file under the gated package directories contributes one AsmFunc per
// `TEXT ·name(SB)` block, classified with the same instruction regexes as
// the compiler listing. The compiler's -S output is empty for a body-less
// Go stub, so without this pass a hand-written kernel would be invisible to
// the gate — its packed-FP floor and the no-CALL invariant could silently
// rot. Macro bodies (`\`-continued #define lines) are counted once at their
// definition; the census is a static property of the source, not a dynamic
// instruction count.
func ParseAsmSources(moduleRoot string, patterns []string) ([]*AsmFunc, error) {
	mod, err := modulePath(moduleRoot)
	if err != nil {
		return nil, err
	}
	var funcs []*AsmFunc
	for _, pat := range patterns {
		rel := strings.TrimPrefix(pat, "./")
		files, err := filepath.Glob(filepath.Join(moduleRoot, rel, "*_amd64.s"))
		if err != nil {
			return nil, err
		}
		sort.Strings(files)
		for _, path := range files {
			raw, err := os.ReadFile(path)
			if err != nil {
				return nil, err
			}
			data := string(raw)
			var cur *AsmFunc
			for ln, line := range strings.Split(data, "\n") {
				line = strings.TrimSuffix(strings.TrimSpace(line), "\\")
				line = strings.TrimSpace(line)
				if m := asmTextRE.FindStringSubmatch(line); m != nil {
					cur = &AsmFunc{
						Sym:  mod + "/" + rel + "." + m[1],
						File: path,
						Line: ln + 1,
					}
					funcs = append(funcs, cur)
					continue
				}
				if cur == nil || line == "" || strings.HasPrefix(line, "//") ||
					strings.HasPrefix(line, "#") || strings.HasPrefix(line, "DATA") ||
					strings.HasPrefix(line, "GLOBL") {
					continue
				}
				op := line
				if i := strings.IndexAny(op, " \t"); i >= 0 {
					op = op[:i]
				}
				switch {
				case op == "CALL":
					// Any call inside a hand-written kernel is a hot-loop
					// call: these functions exist only as kernel bodies.
					cur.Mix.Call++
					cur.Mix.RTLoop++
					cur.RTLoop = append(cur.RTLoop, RuntimeCall{Target: line, File: path, Line: ln + 1})
				case fmaRE.MatchString(op):
					cur.Mix.FMA++
				case scalarFPRE.MatchString(op):
					cur.Mix.Scalar++
				case packedRE.MatchString(op):
					cur.Mix.Packed++
				}
			}
		}
	}
	return funcs, nil
}

// modulePath reads the module directive from moduleRoot's go.mod.
func modulePath(moduleRoot string) (string, error) {
	data, err := os.ReadFile(filepath.Join(moduleRoot, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("%s/go.mod: no module directive", moduleRoot)
}

// inHotLoop reports whether a source position is hot-loop code: inside a
// loop of an annotated function, or anywhere inside a loop-free annotated
// function (leaf helpers like RangeList.Of or Vec3 arithmetic exist only to
// be inlined into hot loops, so all of their code is loop code).
func inHotLoop(ix *HotIndex, file string, line int) bool {
	hf, ok := ix.FuncAt(file, line)
	if !ok {
		return false
	}
	if len(hf.Loops) == 0 {
		return true
	}
	return hf.InLoop(line)
}

// splitFileLine parses the "(/path/file.go:123)" position of an -S line;
// "<unknown line number>" and "<autogenerated>" yield an empty file.
func splitFileLine(pos string) (string, int) {
	i := strings.LastIndexByte(pos, ':')
	if i < 0 || strings.HasPrefix(pos, "<") {
		return "", 0
	}
	ln, err := strconv.Atoi(pos[i+1:])
	if err != nil {
		return "", 0
	}
	return pos[:i], ln
}

// VecasmReport is the outcome of a gate run.
type VecasmReport struct {
	Funcs    []*AsmFunc
	Failures []string // hard-rule violations and out-of-tolerance drift
	Stale    []string // baseline symbols no longer present
}

// Failed reports whether the run violated a rule or drifted past tolerance.
func (r *VecasmReport) Failed() bool { return len(r.Failures) > 0 }

// Check compiles the gated packages, parses the listing and applies the
// kernel invariants plus the baseline drift check. With update=true the
// baseline is rewritten and only hard kernel rules can fail.
func (g *VecasmGate) Check(update bool) (*VecasmReport, error) {
	ix, err := BuildHotIndex(g.ModuleRoot, g.Patterns...)
	if err != nil {
		return nil, err
	}
	out, err := CompilerOutput(g.ModuleRoot, "-S", g.Patterns...)
	if err != nil {
		return nil, err
	}
	funcs := ParseVecasm(out, ix)
	// Hand-written kernels never appear in the compiler listing (their Go
	// stubs are body-less); census their .s sources into the same report.
	asmFuncs, err := ParseAsmSources(g.ModuleRoot, g.Patterns)
	if err != nil {
		return nil, err
	}
	funcs = append(funcs, asmFuncs...)
	sort.Slice(funcs, func(i, j int) bool { return funcs[i].Sym < funcs[j].Sym })
	rep := &VecasmReport{Funcs: funcs}

	// Hard kernel invariants first: independent of the baseline.
	for _, f := range rep.Funcs {
		for _, k := range g.Kernels {
			if !k.Match.MatchString(f.Sym) {
				continue
			}
			if f.Mix.Scalar < k.MinScalar {
				rep.Failures = append(rep.Failures, fmt.Sprintf(
					"%s: scalar FP count %d below kernel minimum %d", f.Sym, f.Mix.Scalar, k.MinScalar))
			}
			if f.Mix.Packed < k.MinPacked {
				rep.Failures = append(rep.Failures, fmt.Sprintf(
					"%s: packed SSE/AVX count %d below kernel minimum %d", f.Sym, f.Mix.Packed, k.MinPacked))
			}
			if k.NoRTLoop && f.Mix.RTLoop > 0 {
				for _, c := range f.RTLoop {
					rep.Failures = append(rep.Failures, fmt.Sprintf(
						"%s: CALL %s in hot loop at %s:%d", f.Sym, c.Target, c.File, c.Line))
				}
			}
		}
	}

	if update {
		if rep.Failed() {
			return rep, nil // never bake a hard-rule violation into the baseline
		}
		return rep, g.writeBaseline(rep.Funcs)
	}

	base, err := g.readBaseline()
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	for _, f := range rep.Funcs {
		seen[f.Sym] = true
		b, ok := base[f.Sym]
		if !ok {
			rep.Failures = append(rep.Failures, fmt.Sprintf(
				"%s: hot function not in vecasm baseline (run `mwlint -vecasm -update`)", f.Sym))
			continue
		}
		if f.Mix.RTLoop > b.RTLoop {
			rep.Failures = append(rep.Failures, fmt.Sprintf(
				"%s: %d runtime calls in hot loops (baseline %d)", f.Sym, f.Mix.RTLoop, b.RTLoop))
		}
		for _, d := range []struct {
			name      string
			got, want int
		}{
			{"scalar", f.Mix.Scalar, b.Scalar},
			{"packed", f.Mix.Packed, b.Packed},
			{"fma", f.Mix.FMA, b.FMA},
			{"call", f.Mix.Call, b.Call},
		} {
			if drifted(d.got, d.want, g.Tolerance) {
				rep.Failures = append(rep.Failures, fmt.Sprintf(
					"%s: %s count %d drifted past ±%.0f%% of baseline %d",
					f.Sym, d.name, d.got, g.Tolerance*100, d.want))
			}
		}
	}
	for sym := range base {
		if !seen[sym] {
			rep.Stale = append(rep.Stale, sym)
		}
	}
	sort.Strings(rep.Failures)
	sort.Strings(rep.Stale)
	return rep, nil
}

// drifted applies the benchdiff-style tolerance: small counts get an
// absolute slack of 2 so ±25% of a count of 4 does not trip on ±1.
func drifted(got, want int, tol float64) bool {
	diff := got - want
	if diff < 0 {
		diff = -diff
	}
	slack := int(tol * float64(want))
	if slack < 2 {
		slack = 2
	}
	return diff > slack
}

var vecasmEntryRE = regexp.MustCompile(
	`^(\S+): scalar=(\d+) packed=(\d+) fma=(\d+) call=(\d+) rtloop=(\d+)$`)

func (g *VecasmGate) readBaseline() (map[string]InstrMix, error) {
	lines, err := readBaselineLines(g.Baseline, "mwlint -vecasm -update")
	if err != nil {
		return nil, err
	}
	base := map[string]InstrMix{}
	for _, line := range lines {
		m := vecasmEntryRE.FindStringSubmatch(line)
		if m == nil {
			return nil, fmt.Errorf("vecasm baseline: malformed entry %q", line)
		}
		atoi := func(s string) int { n, _ := strconv.Atoi(s); return n }
		base[m[1]] = InstrMix{
			Scalar: atoi(m[2]), Packed: atoi(m[3]), FMA: atoi(m[4]),
			Call: atoi(m[5]), RTLoop: atoi(m[6]),
		}
	}
	return base, nil
}

func (g *VecasmGate) writeBaseline(funcs []*AsmFunc) error {
	entries := make([]string, 0, len(funcs))
	for _, f := range funcs {
		entries = append(entries, fmt.Sprintf("%s: %s", f.Sym, f.Mix))
	}
	return writeBaselineLines(g.Baseline, []string{
		"Instruction-mix baseline for //mw:hotpath functions, compiled with",
		"GOAMD64=" + CodegenAMD64Level + " (see internal/analysis/vecasm.go for the class definitions).",
		"Regenerate with `GOAMD64=v3 go run ./cmd/mwlint -vecasm -update` after a",
		"deliberate kernel or toolchain change; `mwlint -vecasm` fails CI on",
		"drift past tolerance, on new runtime calls in hot loops, and on the",
		"hard LJ-kernel invariants (packed ops present, pair loop call-free).",
	}, entries)
}

// ReportText renders the full per-function census — the artifact CI uploads
// so a baseline diff can be read without rerunning the compiler locally.
func (r *VecasmReport) ReportText() string {
	var b strings.Builder
	fmt.Fprintf(&b, "vecasm: %d hot functions (GOAMD64=%s)\n", len(r.Funcs), CodegenAMD64Level)
	for _, f := range r.Funcs {
		fmt.Fprintf(&b, "%s\n    %s:%d  %s\n", f.Sym, f.File, f.Line, f.Mix)
		for _, c := range f.RTLoop {
			fmt.Fprintf(&b, "    hot-loop call: %s at %s:%d\n", c.Target, c.File, c.Line)
		}
	}
	for _, s := range r.Stale {
		fmt.Fprintf(&b, "stale baseline entry: %s\n", s)
	}
	for _, f := range r.Failures {
		fmt.Fprintf(&b, "FAIL: %s\n", f)
	}
	return b.String()
}
