package analysis

import (
	"go/ast"
	"go/types"
)

// PrivForce guards the engine's core data-race invariant (paper §II-B, PR 1's
// stale-force bug): worker tasks accumulate into privatized per-worker force
// arrays; the shared System.Force array is written only by the sanctioned
// reduction entry points. Any function literal is treated as a potential
// task body (they are what schedule, Submit, Execute and `go` run
// concurrently), so inside a func literal it reports:
//
//   - assignments through an index of System.Force;
//   - binding the System.Force slice to a local or passing it to a call
//     (aliasing grants unsynchronized write access to the whole array).
//
// A top-level function annotated //mw:forcewriter is sanctioned: its task
// bodies may write Force because they are the reduction (reducePhase), the
// shared-mode zeroing (predictorPhase), or the mutex-guarded shared-array
// path (forcePhase).
var PrivForce = &Analyzer{
	Name: "privforce",
	Doc:  "flags writes to the shared System.Force array from task bodies outside //mw:forcewriter entry points",
	Run:  runPrivForce,
}

const atomPkgPath = "mw/internal/atom"

func runPrivForce(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || HasDirective(fd.Doc, ForceWriterDirective) {
				continue
			}
			checkForceWrites(pass, fd)
		}
	}
	return nil
}

func checkForceWrites(pass *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.AssignStmt:
				for _, lhs := range m.Lhs {
					if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok && isSystemForce(pass, idx.X) {
						pass.Reportf(lhs.Pos(),
							"write to shared System.Force from a task body; accumulate into the worker's private array (enclosing %s lacks %s)",
							fd.Name.Name, ForceWriterDirective)
					}
				}
				for _, rhs := range m.Rhs {
					if isSystemForce(pass, rhs) {
						pass.Reportf(rhs.Pos(),
							"aliasing shared System.Force inside a task body grants unsynchronized write access (enclosing %s lacks %s)",
							fd.Name.Name, ForceWriterDirective)
					}
				}
			case *ast.CallExpr:
				for _, arg := range m.Args {
					if isSystemForce(pass, arg) {
						pass.Reportf(arg.Pos(),
							"passing shared System.Force to a call inside a task body; pass the worker's private array (enclosing %s lacks %s)",
							fd.Name.Name, ForceWriterDirective)
					}
				}
			}
			return true
		})
		return false // the inner walk already covered nested literals
	})
}

// isSystemForce reports whether e is the selector <sys>.Force with <sys> of
// type atom.System or *atom.System.
func isSystemForce(pass *Pass, e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Force" {
		return false
	}
	t := pass.Info.TypeOf(sel.X)
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "System" && obj.Pkg() != nil && obj.Pkg().Path() == atomPkgPath
}
