// Package analysis is the engine's static-analysis suite: a small,
// dependency-free analogue of golang.org/x/tools/go/analysis driving the
// project-specific analyzers behind cmd/mwlint and `make lint`.
//
// The paper's memory study (§V-B) found the Java engine losing half its
// throughput to short-lived 3-float wrapper objects and its parallel runtime
// resting on hand-maintained invariants (privatized force arrays, latch
// discipline, per-worker queues). The analyzers in this package turn those
// findings into machine-checked rules:
//
//   - hotalloc: no per-iteration heap allocation inside //mw:hotpath loops;
//   - latchcheck: CountDownLatch/CyclicBarrier discipline (count vs. spawned
//     work, Await with no CountDown, copying synchronizer values);
//   - privforce: writes to the shared System.Force array only from
//     //mw:forcewriter reduction entry points;
//   - vecvalue: vec.Vec3 travels by value, never behind a pointer.
//
// Hot functions are marked with a `//mw:hotpath` directive comment on the
// declaration; sanctioned force-reduction entry points with
// `//mw:forcewriter`. The companion escape-budget gate (escapes.go) checks
// the compiler's own escape analysis against a checked-in baseline for the
// same annotated functions.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Analyzer is one named rule. Most rules inspect one type-checked package at
// a time through Run; whole-module rules (hotprop's call-graph walk) set
// RunModule instead and see every loaded package in one pass.
type Analyzer struct {
	Name      string
	Doc       string
	Run       func(*Pass) error
	RunModule func(*ModulePass) error
}

// Diagnostic is one finding, positioned in the analyzed source.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Rule, d.Message)
}

// Pass couples an analyzer invocation to one loaded package.
type Pass struct {
	*Package
	rule  string
	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     p.Fset.Position(pos),
		Rule:    p.rule,
		Message: fmt.Sprintf(format, args...),
	})
}

// ModulePass couples a module-level analyzer invocation to the full set of
// loaded packages.
type ModulePass struct {
	Pkgs  []*Package
	rule  string
	diags *[]Diagnostic
}

// Pass narrows the module pass to one of its packages, for reporting
// diagnostics positioned in that package's file set.
func (p *ModulePass) Pass(pkg *Package) *Pass {
	return &Pass{Package: pkg, rule: p.rule, diags: p.diags}
}

// Run applies each analyzer to each package (and each module-level analyzer
// to the whole package set) and returns all diagnostics in file/line order.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			pass := &Pass{Package: pkg, rule: a.Name, diags: &diags}
			if err := a.Run(pass); err != nil {
				return diags, fmt.Errorf("%s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	for _, a := range analyzers {
		if a.RunModule == nil {
			continue
		}
		pass := &ModulePass{Pkgs: pkgs, rule: a.Name, diags: &diags}
		if err := a.RunModule(pass); err != nil {
			return diags, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return diags, nil
}

// All returns the full analyzer suite in the order mwlint runs it.
func All() []*Analyzer {
	return []*Analyzer{HotAlloc, LatchCheck, PrivForce, VecValue, AtomicCheck, HotProp}
}

// Directive names used by the analyzers.
const (
	// HotPathDirective marks a function whose loops must not allocate.
	HotPathDirective = "//mw:hotpath"
	// ForceWriterDirective marks a sanctioned reduction entry point that may
	// touch the shared System.Force array from parallel task bodies.
	ForceWriterDirective = "//mw:forcewriter"
	// ColdCallDirective marks a function as a sanctioned slow path: hotprop
	// allows hot code to call it without requiring //mw:hotpath, and does not
	// walk through it.
	ColdCallDirective = "//mw:coldcall"
	// RingDirectivePrefix marks a struct field as a single-writer ring cursor:
	// `//mw:ring(writer=push)` permits mutating atomic operations on the field
	// only inside the named functions (comma-separated list).
	RingDirectivePrefix = "//mw:ring("
)

// HasDirective reports whether the comment group carries the directive
// (exact comment text, optionally followed by an explanation after a space).
func HasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if c.Text == directive || strings.HasPrefix(c.Text, directive+" ") {
			return true
		}
	}
	return false
}

// RingWriters extracts the writer list of a `//mw:ring(writer=a,b)` directive
// from the comment group, reporting ok=false when no ring directive is
// present and an error string for a malformed one.
func RingWriters(doc *ast.CommentGroup) (writers []string, ok bool, problem string) {
	if doc == nil {
		return nil, false, ""
	}
	for _, c := range doc.List {
		if !strings.HasPrefix(c.Text, RingDirectivePrefix) {
			continue
		}
		body, found := strings.CutSuffix(strings.TrimPrefix(c.Text, RingDirectivePrefix), ")")
		if !found {
			return nil, true, "missing closing parenthesis"
		}
		val, found := strings.CutPrefix(body, "writer=")
		if !found {
			return nil, true, "expected writer=<func>[,<func>...]"
		}
		for _, w := range strings.Split(val, ",") {
			if w = strings.TrimSpace(w); w != "" {
				writers = append(writers, w)
			}
		}
		if len(writers) == 0 {
			return nil, true, "empty writer list"
		}
		return writers, true, ""
	}
	return nil, false, ""
}

// FuncsWithDirective returns the file's top-level function declarations
// marked with the directive.
func FuncsWithDirective(f *ast.File, directive string) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && HasDirective(fd.Doc, directive) {
			out = append(out, fd)
		}
	}
	return out
}

// WalkLoops traverses root and invokes fn for every node with the number of
// enclosing for/range statements (within root) at that node. The root node
// itself is visited with depth 0.
func WalkLoops(root ast.Node, fn func(n ast.Node, loopDepth int)) {
	var walk func(n ast.Node, depth int)
	walk = func(n ast.Node, depth int) {
		fn(n, depth)
		inner := depth
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			inner++
		}
		for _, child := range children(n) {
			walk(child, inner)
		}
	}
	walk(root, 0)
}

// children returns the direct AST children of n in source order.
func children(n ast.Node) []ast.Node {
	var out []ast.Node
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true // enter n itself
		}
		if c != nil {
			out = append(out, c)
		}
		return false // do not descend past direct children
	})
	return out
}
