package analysis

import "testing"

func TestVecValue(t *testing.T) {
	RunFixtureTest(t, VecValue, "testdata/vecvalue")
}
