package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// VecValue enforces the repository's founding layout decision (vec package
// doc, paper §V-B): vec.Vec3 is a value type, full stop. The Java engine
// lost half its live heap to heap-allocated 3-float wrappers; in Go the
// equivalent regression is a *vec.Vec3 creeping into a signature or struct,
// which forces heap allocation and defeats register passing. It reports:
//
//   - *vec.Vec3 parameters, results, receivers, struct fields, and var
//     declarations (including slices/arrays/maps of *vec.Vec3);
//   - new(vec.Vec3) and &vec.Vec3{...};
//   - taking the address of a vec.Vec3 value.
//
// internal/jheap is exempt by design: it exists to model the Java boxed
// layout for the cache-pollution experiments.
var VecValue = &Analyzer{
	Name: "vecvalue",
	Doc:  "flags *vec.Vec3 pointers and heap-allocated vec.Vec3 values",
	Run:  runVecValue,
}

const (
	vecPkgPath   = "mw/internal/vec"
	jheapPkgPath = "mw/internal/jheap"
)

func runVecValue(pass *Pass) error {
	if pass.Path == jheapPkgPath || pass.Path == vecPkgPath {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Field:
				if t := pass.Info.TypeOf(n.Type); hasVec3Pointer(t) {
					pass.Reportf(n.Type.Pos(), "%s in a signature or struct: pass vec.Vec3 by value to keep it in registers", t)
				}
			case *ast.ValueSpec:
				if n.Type != nil {
					if t := pass.Info.TypeOf(n.Type); hasVec3Pointer(t) {
						pass.Reportf(n.Type.Pos(), "%s variable: keep vec.Vec3 as a value", t)
					}
				}
			case *ast.CallExpr:
				if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && len(n.Args) == 1 {
					if b, ok := pass.Info.Uses[id].(*types.Builtin); ok && b.Name() == "new" {
						if isVec3(pass.Info.TypeOf(n.Args[0])) {
							pass.Reportf(n.Pos(), "new(vec.Vec3) heap-allocates a 3-float wrapper; declare a value")
						}
					}
				}
			case *ast.UnaryExpr:
				if n.Op == token.AND && isVec3(pass.Info.TypeOf(n.X)) {
					if _, isLit := n.X.(*ast.CompositeLit); isLit {
						pass.Reportf(n.Pos(), "&vec.Vec3{...} allocates the paper's 3-float wrapper object; use a value")
					} else {
						pass.Reportf(n.Pos(), "taking the address of a vec.Vec3 forces it off the register path")
					}
				}
			}
			return true
		})
	}
	return nil
}

// isVec3 reports whether t is exactly the named type vec.Vec3.
func isVec3(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Vec3" && obj.Pkg() != nil && obj.Pkg().Path() == vecPkgPath
}

// hasVec3Pointer reports whether t is, or shallowly contains, *vec.Vec3
// (direct pointer, or slice/array/map/chan of it).
func hasVec3Pointer(t types.Type) bool {
	switch t := t.(type) {
	case *types.Pointer:
		return isVec3(t.Elem())
	case *types.Slice:
		return hasVec3Pointer(t.Elem())
	case *types.Array:
		return hasVec3Pointer(t.Elem())
	case *types.Map:
		return hasVec3Pointer(t.Elem()) || hasVec3Pointer(t.Key())
	case *types.Chan:
		return hasVec3Pointer(t.Elem())
	}
	return false
}
