// Package machine is the full-machine timing model: it replays per-thread
// memory access streams (internal/memtrace) on a simulated multicore —
// cores assigned per quantum by the OS-scheduler model (internal/sched),
// every access priced by the cache hierarchy (internal/cache), with barrier
// synchronization between repeated phases like the engine's timestep
// barriers.
//
// This is the substitution for the paper's physical testbeds (Table II): the
// evaluation container exposes a single CPU, so multicore speedups (Fig 1),
// thread-affinity traces (Fig 2) and pinning-topology runtimes (Table III)
// are reproduced on this model, which implements exactly the mechanisms the
// paper attributes its results to — shared last-level caches, cache warmth
// lost on migration, memory-bandwidth saturation, and affinity masks.
package machine

import (
	"fmt"

	"mw/internal/cache"
	"mw/internal/memtrace"
	"mw/internal/sched"
	"mw/internal/topo"
)

// Config parameterizes one machine-model run.
type Config struct {
	Machine  topo.Machine
	Threads  int
	Affinity []topo.CPUMask // one per thread; empty = OS scheduled
	// Background is the number of unrelated load threads (default 2); the
	// OS avoids the cores they occupy, pinned threads cannot.
	Background int
	// BackgroundDuty is the fraction of quanta each background thread is
	// actually runnable (default 1.0 = always busy; a mostly-idle GUI is
	// ~0.2-0.4).
	BackgroundDuty float64
	// QuantumCycles is the scheduling quantum (default 1e6 ≈ 1 ms at 1 GHz).
	QuantumCycles int64
	// GHz converts cycles to seconds in the result (default 2.66, i7 920).
	GHz float64
	// Hier overrides cache parameters; Machine is filled in automatically.
	Hier cache.HierConfig
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Threads <= 0 {
		c.Threads = 1
	}
	if c.Background == 0 {
		c.Background = 2
	}
	if c.BackgroundDuty <= 0 || c.BackgroundDuty > 1 {
		c.BackgroundDuty = 1
	}
	if c.QuantumCycles <= 0 {
		c.QuantumCycles = 1_000_000
	}
	if c.GHz == 0 {
		c.GHz = 2.66
	}
	c.Hier.Machine = c.Machine
	return c
}

// Result is the outcome of a run.
type Result struct {
	Cycles     int64 // makespan
	Seconds    float64
	Stats      cache.Stats
	Migrations int
	Quanta     int
	// BarrierIdle is the total cycles threads spent finished-at-the-barrier
	// while others still worked — the §IV barrier-waste signal.
	BarrierIdle int64
}

// Run replays the streams repeat times (one repeat = one timestep's force
// phase) with a barrier between repeats, and returns the modeled runtime.
func Run(cfg Config, streams []memtrace.Stream, repeat int) (Result, error) {
	cfg = cfg.withDefaults()
	if len(streams) != cfg.Threads {
		return Result{}, fmt.Errorf("machine: %d streams for %d threads", len(streams), cfg.Threads)
	}
	if repeat <= 0 {
		repeat = 1
	}
	sc, err := sched.New(sched.Config{
		Machine:        cfg.Machine,
		Threads:        cfg.Threads,
		Affinity:       cfg.Affinity,
		Background:     cfg.Background,
		BackgroundDuty: cfg.BackgroundDuty,
		// Engine workers park only at phase barriers, a small fraction of a
		// quantum; gentler probabilities than the sched defaults (which
		// model the coarse thread-state view of §IV-B). Unprovoked
		// migration churn matches Fig 2's observed rate (~100+/s for
		// unpinned threads).
		BlockProb:   sched.Prob(0.005),
		WakeProb:    sched.Prob(0.98),
		MigrateProb: 0.1,
		Seed:        cfg.Seed,
	})
	if err != nil {
		return Result{}, err
	}
	h := cache.NewHierarchy(cfg.Hier)

	type threadState struct {
		rep  int // current repetition (phase instance)
		idx  int // next access within the stream
		done bool
	}
	ts := make([]threadState, cfg.Threads)
	remaining := cfg.Threads
	currentRep := 0

	var res Result
	q := 0
	const maxQuanta = 10_000_000 // hard stop against pathological stalls
	for remaining > 0 && q < maxQuanta {
		sc.Step()
		// Core sharing: how many runnable entities per core this quantum.
		share := make([]int, cfg.Machine.NumCores())
		for w := 0; w < cfg.Threads; w++ {
			if c := sc.CoreAt(w, q); c >= 0 && !ts[w].done {
				share[c]++
			}
		}
		// Background threads load the cores the scheduler actually placed
		// them on — so OS-scheduled workers (which the scheduler steers
		// around that load) rarely share, while pinned workers cannot move
		// away.
		for _, bc := range sc.BackgroundAt(q) {
			share[bc]++
		}

		quantumStart := int64(q) * cfg.QuantumCycles
		quantumEnd := quantumStart + cfg.QuantumCycles
		// Per-thread clocks for this quantum. A thread sharing its core with
		// k-1 others progresses k× slower (its deadline shrinks); parked
		// threads make no progress. Accesses across threads are processed in
		// global time order so the memory-channel queueing is FIFO-fair.
		now := make([]int64, cfg.Threads)
		deadline := make([]int64, cfg.Threads)
		dilate := make([]int64, cfg.Threads) // core-sharing time dilation
		for w := 0; w < cfg.Threads; w++ {
			now[w] = quantumStart
			if c := sc.CoreAt(w, q); c >= 0 && !ts[w].done {
				dilate[w] = int64(share[c])
				deadline[w] = quantumEnd
			}
		}
		for {
			// Pick the runnable thread with the smallest clock.
			w := -1
			for v := 0; v < cfg.Threads; v++ {
				st := &ts[v]
				if st.done || dilate[v] == 0 || now[v] >= deadline[v] || st.rep > currentRep {
					continue
				}
				if w < 0 || now[v] < now[w] {
					w = v
				}
			}
			if w < 0 {
				// No runnable thread: try to release the barrier.
				adv := remaining > 0
				var release int64
				for v := range ts {
					if ts[v].done {
						continue
					}
					if ts[v].rep <= currentRep {
						adv = false
						break
					}
					if now[v] > release {
						release = now[v]
					}
				}
				if !adv {
					break
				}
				currentRep++
				// Waiting threads idled until the last arriver.
				for v := range ts {
					if !ts[v].done && dilate[v] != 0 && now[v] < release {
						res.BarrierIdle += release - now[v]
						now[v] = release
					}
				}
				// Boxed per-step regions hold freshly allocated objects in
				// the new step: their cached lines are dead.
				for v := range streams {
					if streams[v].ColdHi > streams[v].ColdLo {
						h.InvalidateRange(streams[v].ColdLo, streams[v].ColdHi)
						break // shared region: once is enough
					}
				}
				continue
			}
			st := &ts[w]
			acc := streams[w].Accesses
			if st.idx >= len(acc) {
				st.rep++
				st.idx = 0
				if st.rep >= repeat {
					st.done = true
					remaining--
					if now[w] > res.Cycles {
						res.Cycles = now[w]
					}
				}
				continue // barrier check happens when no thread is runnable
			}
			a := acc[st.idx]
			st.idx++
			cost := int64(a.Compute)
			cost += h.Access(sc.CoreAt(w, q), now[w], a.Addr, a.Write)
			now[w] += cost * dilate[w]
		}
		q++
	}
	if q >= maxQuanta {
		return Result{}, fmt.Errorf("machine: run did not converge within %d quanta", maxQuanta)
	}
	res.Quanta = q
	res.Stats = h.Stats
	for w := 0; w < cfg.Threads; w++ {
		res.Migrations += sc.Migrations(w)
	}
	res.Seconds = float64(res.Cycles) / (cfg.GHz * 1e9)
	return res, nil
}

// Speedup runs the workload builder at 1..maxThreads threads and returns
// runtime(1)/runtime(t) for each t — the Fig 1 series. build(t) must return
// the per-thread streams for a t-thread decomposition of the same work.
func Speedup(cfg Config, maxThreads int, repeat int, build func(threads int) []memtrace.Stream) ([]float64, error) {
	out := make([]float64, maxThreads)
	var base float64
	for t := 1; t <= maxThreads; t++ {
		c := cfg
		c.Threads = t
		if len(cfg.Affinity) > 0 {
			c.Affinity = cfg.Affinity[:t]
		}
		r, err := Run(c, build(t), repeat)
		if err != nil {
			return nil, err
		}
		if t == 1 {
			base = float64(r.Cycles)
		}
		out[t-1] = base / float64(r.Cycles)
	}
	return out, nil
}
