package machine

import (
	"testing"

	"mw/internal/jheap"
	"mw/internal/memtrace"
	"mw/internal/topo"
	"mw/internal/workload"
)

// synthStream builds a stream of n accesses with the given compute density
// over a working set of wsBytes, strided for thread t of T.
func synthStream(t, T, n int, compute uint16, wsBytes uint64) memtrace.Stream {
	var s memtrace.Stream
	for i := 0; i < n; i++ {
		addr := (uint64(i*T+t) * 64) % wsBytes
		s.Accesses = append(s.Accesses, memtrace.Access{Addr: addr, Compute: compute})
	}
	return s
}

func buildSynth(n int, compute uint16, ws uint64) func(int) []memtrace.Stream {
	return func(threads int) []memtrace.Stream {
		out := make([]memtrace.Stream, threads)
		for t := 0; t < threads; t++ {
			out[t] = synthStream(t, threads, n/threads, compute, ws)
		}
		return out
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{Machine: topo.CoreI7, Threads: 2}, make([]memtrace.Stream, 1), 1); err == nil {
		t.Error("stream/thread mismatch accepted")
	}
}

func TestRunCompletesAndCounts(t *testing.T) {
	streams := buildSynth(4000, 40, 1<<20)(2)
	r, err := Run(Config{Machine: topo.CoreI7, Threads: 2, Seed: 1}, streams, 3)
	if err != nil {
		t.Fatal(err)
	}
	wantAccesses := int64(3 * (2000 + 2000))
	if r.Stats.Accesses != wantAccesses {
		t.Errorf("accesses = %d, want %d", r.Stats.Accesses, wantAccesses)
	}
	if r.Cycles <= 0 || r.Seconds <= 0 {
		t.Error("non-positive runtime")
	}
	if r.Quanta <= 0 {
		t.Error("no quanta used")
	}
}

func TestDeterminism(t *testing.T) {
	cfg := Config{Machine: topo.CoreI7, Threads: 4, Seed: 9}
	s := buildSynth(8000, 30, 1<<21)
	a, err := Run(cfg, s(4), 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, s(4), 2)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.Stats != b.Stats {
		t.Error("machine model nondeterministic for fixed seed")
	}
}

func TestComputeBoundScalesWell(t *testing.T) {
	// High compute density, tiny working set: near-linear speedup expected.
	sp, err := Speedup(Config{Machine: topo.CoreI7, Seed: 2, Background: 1, BackgroundDuty: 0.2}, 4, 3,
		buildSynth(40000, 200, 1<<16))
	if err != nil {
		t.Fatal(err)
	}
	if sp[0] != 1 {
		t.Errorf("speedup(1) = %v", sp[0])
	}
	if sp[3] < 2.5 {
		t.Errorf("compute-bound 4-thread speedup %v < 2.5", sp[3])
	}
}

func TestMemoryBoundScalesPoorly(t *testing.T) {
	// Low compute, working set far beyond LLC, random-ish strides: bandwidth
	// saturation must cap speedup well below the compute-bound case.
	memBound := buildSynth(40000, 4, 64<<20)
	spMem, err := Speedup(Config{Machine: topo.CoreI7, Seed: 2, Background: 1, BackgroundDuty: 0.2}, 4, 3, memBound)
	if err != nil {
		t.Fatal(err)
	}
	spCpu, err := Speedup(Config{Machine: topo.CoreI7, Seed: 2, Background: 1, BackgroundDuty: 0.2}, 4, 3,
		buildSynth(40000, 200, 1<<16))
	if err != nil {
		t.Fatal(err)
	}
	if spMem[3] >= spCpu[3] {
		t.Errorf("memory-bound speedup %v not below compute-bound %v", spMem[3], spCpu[3])
	}
}

func TestSharedDataPrefersSharedLLC(t *testing.T) {
	// All threads repeatedly read the same few-MB block (shared positions):
	// running them within one L3 group must beat spreading across packages,
	// because each group otherwise refetches the block from memory.
	build := func(threads int) []memtrace.Stream {
		out := make([]memtrace.Stream, threads)
		for t := 0; t < threads; t++ {
			// Identical shared read set for every thread.
			out[t] = synthStream(0, 1, 30000, 8, 4<<20)
		}
		return out
	}
	m := topo.XeonX7560
	samePkg, err := m.CoresOnOnePackage(4)
	if err != nil {
		t.Fatal(err)
	}
	spread, err := m.OneCorePerPackage(4)
	if err != nil {
		t.Fatal(err)
	}
	perThread := func(mask topo.CPUMask) []topo.CPUMask {
		cores := mask.Cores()
		out := make([]topo.CPUMask, len(cores))
		for i, c := range cores {
			out[i] = topo.MaskOf(c)
		}
		return out
	}
	rSame, err := Run(Config{Machine: m, Threads: 4, Affinity: perThread(samePkg), Seed: 4, Background: 0}, build(4), 3)
	if err != nil {
		t.Fatal(err)
	}
	rSpread, err := Run(Config{Machine: m, Threads: 4, Affinity: perThread(spread), Seed: 4, Background: 0}, build(4), 3)
	if err != nil {
		t.Fatal(err)
	}
	if rSame.Cycles >= rSpread.Cycles {
		t.Errorf("same-package run (%d cycles) not faster than spread (%d)", rSame.Cycles, rSpread.Cycles)
	}
}

func TestPinnedAvoidsMigrations(t *testing.T) {
	masks := []topo.CPUMask{topo.MaskOf(0), topo.MaskOf(1), topo.MaskOf(2), topo.MaskOf(3)}
	pinned, err := Run(Config{Machine: topo.CoreI7, Threads: 4, Affinity: masks, Seed: 5}, buildSynth(80000, 30, 1<<20)(4), 10)
	if err != nil {
		t.Fatal(err)
	}
	free, err := Run(Config{Machine: topo.CoreI7, Threads: 4, Seed: 5}, buildSynth(80000, 30, 1<<20)(4), 10)
	if err != nil {
		t.Fatal(err)
	}
	if pinned.Migrations != 0 {
		t.Errorf("pinned run migrated %d times", pinned.Migrations)
	}
	if free.Migrations == 0 {
		t.Error("free run never migrated")
	}
}

func TestRealWorkloadStreamsRun(t *testing.T) {
	// End-to-end: Al-1000 force-phase streams through the machine model.
	b := workload.Al1000()
	opt := memtrace.Options{Threads: 2, Layout: jheap.LayoutScattered, Cutoff: 7, Skin: 0.6, Seed: 1}
	m := memtrace.NewAddrMap(b.Sys.N(), opt)
	streams := memtrace.ForcePhase(b.Sys, m, opt)
	r, err := Run(Config{Machine: topo.CoreI7, Threads: 2, Seed: 1}, streams, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats.Accesses == 0 || r.Cycles == 0 {
		t.Error("empty result from real workload")
	}
}

func TestBarrierIdleAccumulatesUnderImbalance(t *testing.T) {
	// One heavy thread + three light: light threads wait at the barrier.
	build := func(threads int) []memtrace.Stream {
		out := make([]memtrace.Stream, threads)
		for t := 0; t < threads; t++ {
			n := 2000
			if t == 0 {
				n = 30000
			}
			out[t] = synthStream(t, threads, n, 50, 1<<20)
		}
		return out
	}
	r, err := Run(Config{Machine: topo.CoreI7, Threads: 4, Seed: 6}, build(4), 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.BarrierIdle == 0 {
		t.Error("no barrier idle despite 15x imbalance")
	}
}
