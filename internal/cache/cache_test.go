package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mw/internal/topo"
)

func smallCache() *Cache {
	// 4 sets × 2 ways × 64B lines = 512 B.
	return New(Config{SizeKB: 1, LineBytes: 64, Ways: 2, Latency: 4})
}

func TestCacheHitAfterInsert(t *testing.T) {
	c := smallCache()
	if c.Lookup(10) {
		t.Fatal("hit on empty cache")
	}
	c.Insert(10)
	if !c.Lookup(10) {
		t.Fatal("miss after insert")
	}
	if c.Hits != 1 || c.Misses != 1 {
		t.Errorf("hits/misses = %d/%d", c.Hits, c.Misses)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := smallCache() // sets = 8 (1KB/64B/2 ways = 8 lines → 4 sets... verify below)
	sets := uint64(c.Sets())
	// Three lines mapping to the same set; 2 ways → third insert evicts LRU.
	a, b, d := sets*1, sets*2, sets*3
	c.Insert(a)
	c.Insert(b)
	c.Lookup(a) // refresh a: b is now LRU
	if ev, was := c.Insert(d); !was || ev != b {
		t.Errorf("evicted %d (valid=%v), want %d", ev, was, b)
	}
	if !c.Contains(a) || c.Contains(b) || !c.Contains(d) {
		t.Error("LRU policy violated")
	}
}

func TestCacheInvalidate(t *testing.T) {
	c := smallCache()
	c.Insert(5)
	if !c.Invalidate(5) {
		t.Error("Invalidate missed present line")
	}
	if c.Invalidate(5) {
		t.Error("Invalidate hit absent line")
	}
	if c.Contains(5) {
		t.Error("line present after invalidation")
	}
}

func TestCacheOccupancyBounded(t *testing.T) {
	c := smallCache()
	cap := c.Sets() * 2
	for i := uint64(0); i < 10000; i++ {
		c.Insert(i)
	}
	if occ := c.Occupancy(); occ > cap {
		t.Errorf("occupancy %d exceeds capacity %d", occ, cap)
	}
}

func TestCacheAccountingInvariant(t *testing.T) {
	c := smallCache()
	rng := rand.New(rand.NewSource(2))
	const n = 5000
	for i := 0; i < n; i++ {
		line := uint64(rng.Intn(64))
		if !c.Lookup(line) {
			c.Insert(line)
		}
	}
	if c.Hits+c.Misses != n {
		t.Errorf("hits+misses = %d, want %d", c.Hits+c.Misses, n)
	}
	if c.MissRate() < 0 || c.MissRate() > 1 {
		t.Errorf("MissRate = %v", c.MissRate())
	}
}

func TestCacheResetClears(t *testing.T) {
	c := smallCache()
	c.Insert(1)
	c.Lookup(1)
	c.Reset()
	if c.Hits != 0 || c.Misses != 0 || c.Occupancy() != 0 {
		t.Error("Reset incomplete")
	}
}

func TestCachePanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad config must panic")
		}
	}()
	New(Config{})
}

// Property: a single-set fully-associative cache of k ways keeps exactly the
// k most recently used lines (LRU stack property).
func TestLRUStackProperty(t *testing.T) {
	f := func(seq []uint8) bool {
		const ways = 4
		// 1 KB / 256 B lines = 4 lines / 4 ways = exactly one set.
		c := New(Config{SizeKB: 1, LineBytes: 256, Ways: ways, Latency: 1})
		if c.Sets() != 1 {
			t.Fatalf("expected single-set cache, got %d sets", c.Sets())
		}
		var recent []uint64
		for _, s := range seq {
			line := uint64(s % 16)
			if !c.Lookup(line) {
				c.Insert(line)
			}
			// maintain reference LRU stack
			for i, r := range recent {
				if r == line {
					recent = append(recent[:i], recent[i+1:]...)
					break
				}
			}
			recent = append(recent, line)
			if len(recent) > ways {
				recent = recent[1:]
			}
			for _, r := range recent {
				if !c.Contains(r) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSequentialBeatsRandomMissRate(t *testing.T) {
	mk := func() *Cache { return New(Config{SizeKB: 32, LineBytes: 64, Ways: 8, Latency: 4}) }
	seq := mk()
	// Sequential byte stream over 256 KB: one miss per 64-byte line.
	for addr := uint64(0); addr < 256*1024; addr += 8 {
		line := addr / 64
		if !seq.Lookup(line) {
			seq.Insert(line)
		}
	}
	rnd := mk()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 32*1024; i++ {
		line := uint64(rng.Intn(4 * 1024 * 1024 / 64))
		if !rnd.Lookup(line) {
			rnd.Insert(line)
		}
	}
	if seq.MissRate() >= rnd.MissRate() {
		t.Errorf("sequential miss rate %v not below random %v", seq.MissRate(), rnd.MissRate())
	}
}

func newHier(m topo.Machine) *Hierarchy {
	return NewHierarchy(HierConfig{Machine: m})
}

func TestHierarchyLatencyLadder(t *testing.T) {
	h := newHier(topo.CoreI7)
	// First touch: memory.
	lat := h.Access(0, 0, 0x1000, false)
	if lat < 200 {
		t.Errorf("cold access latency %d < memory latency", lat)
	}
	// Now in L1.
	if lat = h.Access(0, 1000, 0x1000, false); lat != 4 {
		t.Errorf("L1 hit latency %d", lat)
	}
	// Same line from another core: must miss private caches, hit shared L3.
	lat = h.Access(1, 2000, 0x1000, false)
	if lat != 40 {
		t.Errorf("cross-core L3 hit latency %d, want 40", lat)
	}
}

func TestHierarchyStatsConservation(t *testing.T) {
	h := newHier(topo.CoreI7)
	rng := rand.New(rand.NewSource(4))
	var now int64
	const n = 20000
	for i := 0; i < n; i++ {
		addr := uint64(rng.Intn(1 << 22))
		now += h.Access(rng.Intn(4), now, addr, rng.Intn(4) == 0)
	}
	s := h.Stats
	if s.Accesses != n {
		t.Errorf("accesses = %d", s.Accesses)
	}
	if s.L1Hits+s.L2Hits+s.L3Hits+s.RemoteL3Hits+s.MemAccesses != n {
		t.Errorf("levels do not sum: %d+%d+%d+%d+%d != %d",
			s.L1Hits, s.L2Hits, s.L3Hits, s.RemoteL3Hits, s.MemAccesses, n)
	}
	if s.L2MissRate() < 0 || s.L2MissRate() > 1 || s.LLCMissRate() < 0 || s.LLCMissRate() > 1 {
		t.Error("miss rates out of range")
	}
}

func TestWriteInvalidatesOtherCores(t *testing.T) {
	h := newHier(topo.CoreI7)
	h.Access(0, 0, 0x40, false) // core 0 reads
	h.Access(1, 10, 0x40, false)
	if h.L1(0).Contains(1) == false { // line 0x40/64 = 1
		t.Fatal("core 0 L1 should hold the line")
	}
	h.Access(2, 20, 0x40, true) // core 2 writes
	if h.Stats.Invalidations == 0 {
		t.Error("write did not invalidate sharers")
	}
	if h.L1(0).Contains(1) || h.L1(1).Contains(1) {
		t.Error("sharer copies survived a remote write")
	}
	// Core 0 must now re-miss (coherence miss).
	lat := h.Access(0, 30, 0x40, false)
	if lat <= 4 {
		t.Errorf("post-invalidation access hit locally (lat=%d)", lat)
	}
}

func TestFalseSharingPingPong(t *testing.T) {
	// Two cores alternately writing two different words of the same line
	// must invalidate each other every time.
	h := newHier(topo.CoreI7)
	var now int64
	inv0 := h.Stats.Invalidations
	for i := 0; i < 100; i++ {
		now += h.Access(0, now, 0x80, true) // word 0 of line 2
		now += h.Access(1, now, 0x88, true) // word 1 of line 2
	}
	if got := h.Stats.Invalidations - inv0; got < 190 {
		t.Errorf("false-sharing invalidations = %d, want ≈200", got)
	}
}

func TestMemoryChannelQueueing(t *testing.T) {
	// Many simultaneous misses through one channel must produce stall
	// cycles; generous channels at the same rate must produce fewer.
	narrow := NewHierarchy(HierConfig{Machine: func() topo.Machine {
		m := topo.CoreI7
		m.MemChannels = 1
		return m
	}()})
	wide := NewHierarchy(HierConfig{Machine: func() topo.Machine {
		m := topo.CoreI7
		m.MemChannels = 8
		return m
	}()})
	for i := 0; i < 1000; i++ {
		addr := uint64(i) * 64 * 1024 // distinct sets/lines, all cold misses
		narrow.Access(i%4, 0, addr, false)
		wide.Access(i%4, 0, addr, false)
	}
	if narrow.Stats.MemStall <= wide.Stats.MemStall {
		t.Errorf("narrow stall %d not above wide stall %d",
			narrow.Stats.MemStall, wide.Stats.MemStall)
	}
	if narrow.Stats.MemStall == 0 {
		t.Error("no queueing under burst misses on one channel")
	}
}

func TestSharedL3VisibleAcrossGroupOnly(t *testing.T) {
	h := newHier(topo.XeonE5450) // L3 shared per core pair
	h.Access(0, 0, 0x2000, false)
	// Core 1 shares the L3 slice with core 0 → L3 hit (40 cycles).
	if lat := h.Access(1, 100, 0x2000, false); lat != 40 {
		t.Errorf("same-group access latency %d, want 40", lat)
	}
	// Core 2 is another slice → remote-L3 snoop: slower than local L3,
	// faster than memory.
	if lat := h.Access(2, 200, 0x2000, false); lat != 110 {
		t.Errorf("cross-group access latency %d, want remote-L3 110", lat)
	}
	if h.Stats.RemoteL3Hits != 1 {
		t.Errorf("RemoteL3Hits = %d", h.Stats.RemoteL3Hits)
	}
	// A write from group 0 invalidates group 1's shared copy: core 2
	// re-misses past its own L3.
	h.Access(0, 300, 0x2000, true)
	if lat := h.Access(2, 400, 0x2000, false); lat <= 40 {
		t.Errorf("stale cross-group copy survived a write (lat=%d)", lat)
	}
}

func TestFlushCore(t *testing.T) {
	h := newHier(topo.CoreI7)
	h.Access(0, 0, 0x40, false)
	h.FlushCore(0)
	if h.L1(0).Occupancy() != 0 || h.L2(0).Occupancy() != 0 {
		t.Error("FlushCore left lines behind")
	}
}

func TestResetStats(t *testing.T) {
	h := newHier(topo.CoreI7)
	h.Access(0, 0, 0x40, false)
	h.ResetStats()
	if h.Stats.Accesses != 0 {
		t.Error("ResetStats incomplete")
	}
}
