// Package cache models the memory hierarchy of the paper's Table II
// machines: private set-associative L1/L2 per core, L3 slices shared by
// topology-defined core groups, write-invalidate coherence between private
// caches, and a memory controller with a finite number of channels whose
// queueing produces the bandwidth saturation that the paper identifies as
// the Al-1000 benchmark's scaling limiter (§V).
//
// The model is trace-driven and deterministic: Access(core, now, addr,
// write) returns the access latency in cycles given the current simulated
// time, and mutates cache state.
package cache

// Config describes one cache.
type Config struct {
	SizeKB    int
	LineBytes int
	Ways      int
	Latency   int64 // hit latency in cycles
}

// Cache is one set-associative cache with LRU replacement.
type Cache struct {
	cfg   Config
	nsets uint64
	tags  []uint64 // [set*ways+way]
	valid []bool
	lru   []uint64
	clock uint64

	Hits   int64
	Misses int64
}

// New creates a cache. Sets are derived from size, line and ways; the set
// count is rounded down to a power of two for cheap indexing.
func New(cfg Config) *Cache {
	if cfg.SizeKB <= 0 || cfg.LineBytes <= 0 || cfg.Ways <= 0 {
		panic("cache: invalid config")
	}
	lines := cfg.SizeKB * 1024 / cfg.LineBytes
	nsets := uint64(1)
	for nsets*2 <= uint64(lines/cfg.Ways) {
		nsets *= 2
	}
	c := &Cache{
		cfg:   cfg,
		nsets: nsets,
		tags:  make([]uint64, nsets*uint64(cfg.Ways)),
		valid: make([]bool, nsets*uint64(cfg.Ways)),
		lru:   make([]uint64, nsets*uint64(cfg.Ways)),
	}
	return c
}

// Sets returns the number of sets.
func (c *Cache) Sets() int { return int(c.nsets) }

func (c *Cache) setOf(line uint64) uint64 { return line & (c.nsets - 1) }

// Lookup touches the line: on hit it refreshes LRU and returns true; on miss
// it returns false without inserting.
func (c *Cache) Lookup(line uint64) bool {
	set := c.setOf(line)
	base := set * uint64(c.cfg.Ways)
	c.clock++
	for w := 0; w < c.cfg.Ways; w++ {
		i := base + uint64(w)
		if c.valid[i] && c.tags[i] == line {
			c.lru[i] = c.clock
			c.Hits++
			return true
		}
	}
	c.Misses++
	return false
}

// Insert places the line, evicting the LRU way if needed. It returns the
// evicted line and whether a valid line was displaced.
func (c *Cache) Insert(line uint64) (evicted uint64, wasValid bool) {
	set := c.setOf(line)
	base := set * uint64(c.cfg.Ways)
	c.clock++
	victim := base
	for w := 0; w < c.cfg.Ways; w++ {
		i := base + uint64(w)
		if !c.valid[i] {
			victim = i
			wasValid = false
			c.tags[i] = line
			c.valid[i] = true
			c.lru[i] = c.clock
			return 0, false
		}
		if c.lru[i] < c.lru[victim] {
			victim = i
		}
	}
	evicted = c.tags[victim]
	c.tags[victim] = line
	c.lru[victim] = c.clock
	return evicted, true
}

// Invalidate removes the line if present, returning whether it was held.
func (c *Cache) Invalidate(line uint64) bool {
	set := c.setOf(line)
	base := set * uint64(c.cfg.Ways)
	for w := 0; w < c.cfg.Ways; w++ {
		i := base + uint64(w)
		if c.valid[i] && c.tags[i] == line {
			c.valid[i] = false
			return true
		}
	}
	return false
}

// Contains reports presence without touching LRU or counters.
func (c *Cache) Contains(line uint64) bool {
	set := c.setOf(line)
	base := set * uint64(c.cfg.Ways)
	for w := 0; w < c.cfg.Ways; w++ {
		i := base + uint64(w)
		if c.valid[i] && c.tags[i] == line {
			return true
		}
	}
	return false
}

// Occupancy returns the number of valid lines.
func (c *Cache) Occupancy() int {
	n := 0
	for _, v := range c.valid {
		if v {
			n++
		}
	}
	return n
}

// Reset invalidates everything and clears counters.
func (c *Cache) Reset() {
	for i := range c.valid {
		c.valid[i] = false
	}
	c.Hits, c.Misses = 0, 0
}

// MissRate returns misses / (hits+misses), or 0 when untouched.
func (c *Cache) MissRate() float64 {
	t := c.Hits + c.Misses
	if t == 0 {
		return 0
	}
	return float64(c.Misses) / float64(t)
}
