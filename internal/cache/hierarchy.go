package cache

import (
	"mw/internal/topo"
)

// HierConfig parameterizes a full-machine hierarchy. Latencies are in core
// cycles; defaults follow common Nehalem-class figures (the paper's i7 920).
type HierConfig struct {
	Machine topo.Machine

	LineBytes  int   // cache line size (default 64)
	L1Ways     int   // default 8
	L2Ways     int   // default 8
	L3Ways     int   // default 16
	L1Latency  int64 // default 4
	L2Latency  int64 // default 12
	L3Latency  int64 // default 40
	MemLatency int64 // default 200

	// MemService is how long one request occupies a memory channel; with
	// Machine.MemChannels it caps aggregate bandwidth (default 60).
	MemService int64

	// NoPrefetch disables the next-line prefetcher. By default an L2 fill
	// also installs the successor line into L2 at no charge — the hardware
	// streamer that makes packed/sequential layouts fast and does nothing
	// for scattered ones (the §V-A spatial-locality mechanism).
	NoPrefetch bool

	// RemoteL3 is the latency of fetching a line found in another L3
	// group's slice (cross-socket / cross-slice snoop, default 110) — the
	// "different memory access speeds … depending on whether they shared
	// data at the LLC, socket, or system level" of §V-C.
	RemoteL3 int64

	// MLP is the memory-level parallelism factor: an out-of-order core with
	// prefetchers overlaps several outstanding misses, so the latency a
	// thread *perceives* per miss is MemLatency/MLP (+ any queueing), while
	// each miss still occupies a channel for the full MemService. MLP > 1
	// is what lets a single memory-bound thread approach bandwidth
	// saturation on its own. Default 1 (no overlap).
	MLP int64
}

func (c HierConfig) withDefaults() HierConfig {
	if c.LineBytes == 0 {
		c.LineBytes = 64
	}
	if c.L1Ways == 0 {
		c.L1Ways = 8
	}
	if c.L2Ways == 0 {
		c.L2Ways = 8
	}
	if c.L3Ways == 0 {
		c.L3Ways = 16
	}
	if c.L1Latency == 0 {
		c.L1Latency = 4
	}
	if c.L2Latency == 0 {
		c.L2Latency = 12
	}
	if c.L3Latency == 0 {
		c.L3Latency = 40
	}
	if c.MemLatency == 0 {
		c.MemLatency = 200
	}
	if c.MemService == 0 {
		c.MemService = 60
	}
	if c.RemoteL3 == 0 {
		c.RemoteL3 = 110
	}
	if c.MLP <= 0 {
		c.MLP = 1
	}
	return c
}

// Stats aggregates hierarchy-level counters.
type Stats struct {
	Accesses      int64
	L1Hits        int64
	L2Hits        int64
	L3Hits        int64
	MemAccesses   int64
	Invalidations int64
	RemoteL3Hits  int64 // lines served by another group's L3 slice
	MemStall      int64 // cycles lost to channel queueing beyond raw latency
}

// L2MissRate returns the fraction of L2 lookups that missed (reaches L3 or
// memory) — the "mid-level cache miss rate" the paper read from VTune.
func (s Stats) L2MissRate() float64 {
	l2Lookups := s.Accesses - s.L1Hits
	if l2Lookups == 0 {
		return 0
	}
	return float64(l2Lookups-s.L2Hits) / float64(l2Lookups)
}

// LLCMissRate returns the fraction of L3 lookups that went to memory.
func (s Stats) LLCMissRate() float64 {
	l3Lookups := s.Accesses - s.L1Hits - s.L2Hits
	if l3Lookups == 0 {
		return 0
	}
	return float64(s.MemAccesses) / float64(l3Lookups)
}

// Hierarchy is the full-machine cache model.
type Hierarchy struct {
	cfg HierConfig

	l1, l2 []*Cache // per core
	l3     []*Cache // per L3 group

	// dir maps a line to the bitmask of cores that may hold it privately;
	// approximate (bits are cleared only by invalidation), which costs only
	// harmless no-op invalidations.
	dir map[uint64]uint64

	chanBusy []int64 // per-channel busy-until timestamps

	Stats Stats
}

// NewHierarchy builds the cache model for a machine.
func NewHierarchy(cfg HierConfig) *Hierarchy {
	cfg = cfg.withDefaults()
	m := cfg.Machine
	h := &Hierarchy{
		cfg:      cfg,
		l1:       make([]*Cache, m.NumCores()),
		l2:       make([]*Cache, m.NumCores()),
		l3:       make([]*Cache, max(1, m.NumL3Groups())),
		dir:      make(map[uint64]uint64, 1<<16),
		chanBusy: make([]int64, max(1, m.MemChannels)),
	}
	for c := range h.l1 {
		h.l1[c] = New(Config{SizeKB: m.L1KB, LineBytes: cfg.LineBytes, Ways: cfg.L1Ways, Latency: cfg.L1Latency})
		h.l2[c] = New(Config{SizeKB: m.L2KB, LineBytes: cfg.LineBytes, Ways: cfg.L2Ways, Latency: cfg.L2Latency})
	}
	for g := range h.l3 {
		h.l3[g] = New(Config{SizeKB: m.L3KB, LineBytes: cfg.LineBytes, Ways: cfg.L3Ways, Latency: cfg.L3Latency})
	}
	return h
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Access performs one memory access by the given core at simulated time now
// (cycles) and returns its latency in cycles. Writes invalidate other cores'
// private copies of the line (write-invalidate coherence), which is what
// makes false sharing and migration-cold caches visible in the model.
func (h *Hierarchy) Access(core int, now int64, addr uint64, write bool) int64 {
	line := addr / uint64(h.cfg.LineBytes)
	h.Stats.Accesses++

	var lat int64
	switch {
	case h.l1[core].Lookup(line):
		h.Stats.L1Hits++
		lat = h.cfg.L1Latency
	case h.l2[core].Lookup(line):
		h.Stats.L2Hits++
		lat = h.cfg.L2Latency
		h.l1[core].Insert(line)
	default:
		g := h.cfg.Machine.L3GroupOfCore(core)
		if h.l3[g].Lookup(line) {
			h.Stats.L3Hits++
			lat = h.cfg.L3Latency
		} else if rg := h.snoopL3(g, line); rg >= 0 {
			// Served by a remote slice (cross-socket snoop); a shared read
			// copy is installed locally.
			h.Stats.RemoteL3Hits++
			lat = h.cfg.RemoteL3
			h.l3[g].Insert(line)
		} else {
			// Memory access with channel queueing.
			h.Stats.MemAccesses++
			// Mix the line address before selecting a channel so that
			// power-of-two strides don't alias onto one channel (splitmix64
			// finalizer).
			hsh := line
			hsh ^= hsh >> 33
			hsh *= 0xff51afd7ed558ccd
			hsh ^= hsh >> 33
			ch := int(hsh % uint64(len(h.chanBusy)))
			start := now
			if h.chanBusy[ch] > start {
				h.Stats.MemStall += h.chanBusy[ch] - start
				start = h.chanBusy[ch]
			}
			h.chanBusy[ch] = start + h.cfg.MemService
			lat = (start - now) + h.cfg.MemLatency/h.cfg.MLP
			h.l3[g].Insert(line)
		}
		h.l2[core].Insert(line)
		h.l1[core].Insert(line)
		if !h.cfg.NoPrefetch {
			// Streamer: pull the next two lines so both unit-stride and
			// two-line-stride (128-byte objects) sequences are covered.
			for d := uint64(1); d <= 2; d++ {
				if !h.l2[core].Contains(line + d) {
					h.l2[core].Insert(line + d)
					h.dir[line+d] |= 1 << uint(core)
				}
			}
		}
	}

	if write {
		if owners, ok := h.dir[line]; ok {
			for c := 0; c < len(h.l1); c++ {
				if c == core || owners&(1<<uint(c)) == 0 {
					continue
				}
				inv := h.l1[c].Invalidate(line)
				if h.l2[c].Invalidate(line) {
					inv = true
				}
				if inv {
					h.Stats.Invalidations++
				}
			}
		}
		// Other groups' shared L3 copies become stale too.
		wg := h.cfg.Machine.L3GroupOfCore(core)
		for g := range h.l3 {
			if g != wg && h.l3[g].Invalidate(line) {
				h.Stats.Invalidations++
			}
		}
		h.dir[line] = 1 << uint(core)
	} else {
		h.dir[line] |= 1 << uint(core)
	}
	return lat
}

// snoopL3 returns the index of another L3 group holding the line, or -1.
func (h *Hierarchy) snoopL3(except int, line uint64) int {
	for g := range h.l3 {
		if g != except && h.l3[g].Contains(line) {
			return g
		}
	}
	return -1
}

// InvalidateRange drops every line of [lo, hi) from all caches — used by the
// machine model when a region's contents are logically replaced by freshly
// allocated objects at new addresses (per-step boxed neighbor lists).
func (h *Hierarchy) InvalidateRange(lo, hi uint64) {
	first := lo / uint64(h.cfg.LineBytes)
	last := (hi + uint64(h.cfg.LineBytes) - 1) / uint64(h.cfg.LineBytes)
	for line := first; line < last; line++ {
		for c := range h.l1 {
			h.l1[c].Invalidate(line)
			h.l2[c].Invalidate(line)
		}
		for g := range h.l3 {
			h.l3[g].Invalidate(line)
		}
		delete(h.dir, line)
	}
}

// FlushCore invalidates a core's private caches — used by the machine model
// when the simulated heap is re-laid-out between experiments (not on
// migration: a migrated thread naturally finds the destination core's caches
// cold, which the model captures without explicit flushing).
func (h *Hierarchy) FlushCore(core int) {
	h.l1[core].Reset()
	h.l2[core].Reset()
}

// ResetStats clears aggregate counters without touching cache contents.
func (h *Hierarchy) ResetStats() { h.Stats = Stats{} }

// L1 returns core c's L1 cache (for tests and diagnostics).
func (h *Hierarchy) L1(c int) *Cache { return h.l1[c] }

// L2 returns core c's L2 cache.
func (h *Hierarchy) L2(c int) *Cache { return h.l2[c] }

// L3 returns group g's L3 slice.
func (h *Hierarchy) L3(g int) *Cache { return h.l3[g] }
