package mml

import (
	"bytes"
	"strings"
	"testing"
)

// model wraps a JSON body in the envelope every valid model shares.
func model(body string) string {
	return `{"version":1,"name":"f","box":{"l":[20,20,20],"periodic":true},` + body +
		`"engine":{"dt":1,"lj_cutoff":6,"skin":0.5}}`
}

// FuzzLoadSystem drives attacker-controlled bytes through the full load
// path: parse, validate, materialize. Malformed input must error; it must
// never panic.
func FuzzLoadSystem(f *testing.F) {
	f.Add([]byte(model(`"atoms":[{"el":"Na","p":[1,1,1],"q":1},{"el":"Cl","p":[3,1,1],"q":-1}],`)))
	f.Add([]byte(model(`"atoms":[{"el":"C","p":[1,1,1]},{"el":"C","p":[2.5,1,1]}],"bonds":[[0,1,20,1.5]],`)))
	// Regression: negative angle/torsion indices used to pass Validate (only
	// the max index was checked) and crash inside BuildExclusions.
	f.Add([]byte(model(`"atoms":[{"el":"C","p":[1,1,1]},{"el":"C","p":[2,1,1]}],"angles":[[-1,0,1,1,1.5]],`)))
	f.Add([]byte(model(`"atoms":[{"el":"C","p":[1,1,1]},{"el":"C","p":[2,1,1]}],"torsions":[[0,1,-5,1,1,2,0]],`)))
	f.Add([]byte(model(`"atoms":[{"el":"Xx","p":[1,1,1]}],`)))                       // unknown element
	f.Add([]byte(model(`"atoms":[{"el":"C","p":[1,1,1]}],"bonds":[[0,7,20,1.5]],`))) // out of range
	f.Add([]byte(`{"version":99}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`null`))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		sys, _, err := m.System()
		if err != nil {
			return
		}
		if sys == nil {
			t.Fatal("nil system without error")
		}
		if err := sys.Validate(); err != nil {
			t.Fatalf("materialized system fails its own validation: %v", err)
		}
	})
}

// TestNegativeBondTermIndicesRejected pins the Validate fix the fuzzer
// motivated: each bonded-term kind with a negative index must be rejected at
// load time instead of panicking in BuildExclusions.
func TestNegativeBondTermIndicesRejected(t *testing.T) {
	atoms := `"atoms":[{"el":"C","p":[1,1,1]},{"el":"C","p":[2,1,1]},{"el":"C","p":[3,1,1]},{"el":"C","p":[4,1,1]}],`
	cases := map[string]string{
		"angle":   `"angles":[[-1,0,1,1,1.5]],`,
		"torsion": `"torsions":[[0,1,2,-3,1,2,0]],`,
		"morse":   `"morses":[[-2,1,3,2,1.2]],`,
	}
	for name, terms := range cases {
		m, err := Load(strings.NewReader(model(atoms + terms)))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, _, err := m.System(); err == nil {
			t.Errorf("%s with negative atom index materialized without error", name)
		}
	}
}
