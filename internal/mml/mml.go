// Package mml persists simulation models. Molecular Workbench ships its
// simulations as model files loaded from an online repository (§III built
// its benchmarks from them); this package provides the equivalent for the
// Go engine: a versioned JSON document holding the box, atoms, bonded
// topology and recommended engine parameters, with full round-trip
// fidelity.
package mml

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"mw/internal/atom"
	"mw/internal/core"
	"mw/internal/vec"
)

// Version is the current model format version.
const Version = 1

// Model is the serializable form of a system plus engine configuration.
type Model struct {
	Version int    `json:"version"`
	Name    string `json:"name"`

	Box struct {
		L        [3]float64 `json:"l"`
		Periodic bool       `json:"periodic"`
	} `json:"box"`

	Atoms    []AtomRec    `json:"atoms"`
	Bonds    []BondRec    `json:"bonds,omitempty"`
	Angles   []AngleRec   `json:"angles,omitempty"`
	Torsions []TorsionRec `json:"torsions,omitempty"`
	Morses   []MorseRec   `json:"morses,omitempty"`

	Engine EngineRec `json:"engine"`
}

// AtomRec is one atom.
type AtomRec struct {
	Element string     `json:"el"`
	Pos     [3]float64 `json:"p"`
	Vel     [3]float64 `json:"v,omitempty"`
	Charge  float64    `json:"q,omitempty"`
	Fixed   bool       `json:"fixed,omitempty"`
}

// BondRec is one radial bond.
type BondRec struct {
	I, J int32
	K    float64 `json:"k"`
	R0   float64 `json:"r0"`
}

// MarshalJSON stores the pair compactly.
func (b BondRec) MarshalJSON() ([]byte, error) {
	return json.Marshal([4]float64{float64(b.I), float64(b.J), b.K, b.R0})
}

// UnmarshalJSON restores the compact form.
func (b *BondRec) UnmarshalJSON(data []byte) error {
	var a [4]float64
	if err := json.Unmarshal(data, &a); err != nil {
		return err
	}
	b.I, b.J, b.K, b.R0 = int32(a[0]), int32(a[1]), a[2], a[3]
	return nil
}

// AngleRec is one angular bond.
type AngleRec struct {
	I, J, K int32
	KTheta  float64 `json:"k"`
	Theta0  float64 `json:"t0"`
}

// MarshalJSON stores the triplet compactly.
func (a AngleRec) MarshalJSON() ([]byte, error) {
	return json.Marshal([5]float64{float64(a.I), float64(a.J), float64(a.K), a.KTheta, a.Theta0})
}

// UnmarshalJSON restores the compact form.
func (a *AngleRec) UnmarshalJSON(data []byte) error {
	var v [5]float64
	if err := json.Unmarshal(data, &v); err != nil {
		return err
	}
	a.I, a.J, a.K, a.KTheta, a.Theta0 = int32(v[0]), int32(v[1]), int32(v[2]), v[3], v[4]
	return nil
}

// TorsionRec is one torsional bond.
type TorsionRec struct {
	I, J, K, L int32
	V0         float64 `json:"v0"`
	N          int     `json:"n"`
	Phi0       float64 `json:"p0"`
}

// MarshalJSON stores the quad compactly.
func (t TorsionRec) MarshalJSON() ([]byte, error) {
	return json.Marshal([7]float64{
		float64(t.I), float64(t.J), float64(t.K), float64(t.L),
		t.V0, float64(t.N), t.Phi0,
	})
}

// UnmarshalJSON restores the compact form.
func (t *TorsionRec) UnmarshalJSON(data []byte) error {
	var v [7]float64
	if err := json.Unmarshal(data, &v); err != nil {
		return err
	}
	t.I, t.J, t.K, t.L = int32(v[0]), int32(v[1]), int32(v[2]), int32(v[3])
	t.V0, t.N, t.Phi0 = v[4], int(v[5]), v[6]
	return nil
}

// MorseRec is one Morse bond.
type MorseRec struct {
	I, J int32
	D    float64
	A    float64
	R0   float64
}

// MarshalJSON stores the record compactly.
func (m MorseRec) MarshalJSON() ([]byte, error) {
	return json.Marshal([5]float64{float64(m.I), float64(m.J), m.D, m.A, m.R0})
}

// UnmarshalJSON restores the compact form.
func (m *MorseRec) UnmarshalJSON(data []byte) error {
	var v [5]float64
	if err := json.Unmarshal(data, &v); err != nil {
		return err
	}
	m.I, m.J, m.D, m.A, m.R0 = int32(v[0]), int32(v[1]), v[2], v[3], v[4]
	return nil
}

// EngineRec stores the recommended engine parameters.
type EngineRec struct {
	Dt       float64 `json:"dt"`
	LJCutoff float64 `json:"lj_cutoff"`
	Skin     float64 `json:"skin"`
}

// FromSystem captures a system (and the engine parameters it should run
// with) as a model.
func FromSystem(name string, s *atom.System, cfg core.Config) *Model {
	m := &Model{Version: Version, Name: name}
	m.Box.L = [3]float64{s.Box.L.X, s.Box.L.Y, s.Box.L.Z}
	m.Box.Periodic = s.Box.Periodic
	m.Engine = EngineRec{Dt: cfg.Dt, LJCutoff: cfg.LJCutoff, Skin: cfg.Skin}
	m.Atoms = make([]AtomRec, s.N())
	for i := range m.Atoms {
		m.Atoms[i] = AtomRec{
			Element: s.Elements[s.Elem[i]].Symbol,
			Pos:     [3]float64{s.Pos[i].X, s.Pos[i].Y, s.Pos[i].Z},
			Vel:     [3]float64{s.Vel[i].X, s.Vel[i].Y, s.Vel[i].Z},
			Charge:  s.Charge[i],
			Fixed:   s.Fixed[i],
		}
	}
	for _, b := range s.Bonds {
		m.Bonds = append(m.Bonds, BondRec{I: b.I, J: b.J, K: b.K, R0: b.R0})
	}
	for _, a := range s.Angles {
		m.Angles = append(m.Angles, AngleRec{I: a.I, J: a.J, K: a.K, KTheta: a.KTheta, Theta0: a.Theta0})
	}
	for _, t := range s.Torsions {
		m.Torsions = append(m.Torsions, TorsionRec{I: t.I, J: t.J, K: t.K, L: t.L, V0: t.V0, N: t.N, Phi0: t.Phi0})
	}
	for _, mo := range s.Morses {
		m.Morses = append(m.Morses, MorseRec{I: mo.I, J: mo.J, D: mo.D, A: mo.A, R0: mo.R0})
	}
	return m
}

// System materializes the model into a live system plus its engine config.
func (m *Model) System() (*atom.System, core.Config, error) {
	if m.Version != Version {
		return nil, core.Config{}, fmt.Errorf("mml: unsupported version %d", m.Version)
	}
	symbols := map[string]int16{}
	for i, e := range atom.Builtin {
		symbols[e.Symbol] = int16(i)
	}
	box := atom.NewBox(m.Box.L[0], m.Box.L[1], m.Box.L[2], m.Box.Periodic)
	s := atom.NewSystem(box)
	for i, a := range m.Atoms {
		el, ok := symbols[a.Element]
		if !ok {
			return nil, core.Config{}, fmt.Errorf("mml: atom %d has unknown element %q", i, a.Element)
		}
		s.AddAtom(el,
			vec.New(a.Pos[0], a.Pos[1], a.Pos[2]),
			vec.New(a.Vel[0], a.Vel[1], a.Vel[2]),
			a.Charge, a.Fixed)
	}
	for _, b := range m.Bonds {
		s.Bonds = append(s.Bonds, atom.Bond{I: b.I, J: b.J, K: b.K, R0: b.R0})
	}
	for _, a := range m.Angles {
		s.Angles = append(s.Angles, atom.Angle{I: a.I, J: a.J, K: a.K, KTheta: a.KTheta, Theta0: a.Theta0})
	}
	for _, t := range m.Torsions {
		s.Torsions = append(s.Torsions, atom.Torsion{I: t.I, J: t.J, K: t.K, L: t.L, V0: t.V0, N: t.N, Phi0: t.Phi0})
	}
	for _, mo := range m.Morses {
		s.Morses = append(s.Morses, atom.Morse{I: mo.I, J: mo.J, D: mo.D, A: mo.A, R0: mo.R0})
	}
	if err := s.Validate(); err != nil {
		return nil, core.Config{}, fmt.Errorf("mml: %w", err)
	}
	if len(s.Bonds) > 0 || len(s.Angles) > 0 || len(s.Torsions) > 0 || len(s.Morses) > 0 {
		s.BuildExclusions()
	}
	cfg := core.Config{Dt: m.Engine.Dt, LJCutoff: m.Engine.LJCutoff, Skin: m.Engine.Skin}
	return s, cfg, nil
}

// Save writes the model as indented JSON.
func Save(w io.Writer, m *Model) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(m)
}

// Load reads a model written by Save.
func Load(r io.Reader) (*Model, error) {
	var m Model
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("mml: %w", err)
	}
	return &m, nil
}

// SaveFile writes the model to path.
func SaveFile(path string, m *Model) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := Save(f, m); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads a model from path.
func LoadFile(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
