package mml

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mw/internal/atom"
	"mw/internal/core"
	"mw/internal/workload"
)

func roundTrip(t *testing.T, b *workload.Benchmark) {
	t.Helper()
	m := FromSystem(b.Name, b.Sys, b.Cfg)
	var buf bytes.Buffer
	if err := Save(&buf, m); err != nil {
		t.Fatalf("Save: %v", err)
	}
	m2, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	s2, cfg2, err := m2.System()
	if err != nil {
		t.Fatalf("System: %v", err)
	}
	s1 := b.Sys
	if s2.N() != s1.N() {
		t.Fatalf("atom count %d != %d", s2.N(), s1.N())
	}
	for i := 0; i < s1.N(); i++ {
		if !s2.Pos[i].ApproxEqual(s1.Pos[i], 1e-12) || !s2.Vel[i].ApproxEqual(s1.Vel[i], 1e-12) {
			t.Fatalf("atom %d state mismatch", i)
		}
		if s2.Charge[i] != s1.Charge[i] || s2.Fixed[i] != s1.Fixed[i] || s2.Elem[i] != s1.Elem[i] {
			t.Fatalf("atom %d attributes mismatch", i)
		}
	}
	if len(s2.Bonds) != len(s1.Bonds) || len(s2.Angles) != len(s1.Angles) || len(s2.Torsions) != len(s1.Torsions) {
		t.Fatal("topology counts mismatch")
	}
	for i := range s1.Bonds {
		if s2.Bonds[i] != s1.Bonds[i] {
			t.Fatalf("bond %d mismatch", i)
		}
	}
	for i := range s1.Torsions {
		if s2.Torsions[i] != s1.Torsions[i] {
			t.Fatalf("torsion %d mismatch", i)
		}
	}
	if cfg2.Dt != b.Cfg.Dt || cfg2.LJCutoff != b.Cfg.LJCutoff || cfg2.Skin != b.Cfg.Skin {
		t.Fatal("engine parameters mismatch")
	}
	if s2.Box != s1.Box {
		t.Fatal("box mismatch")
	}
}

func TestRoundTripAllBenchmarks(t *testing.T) {
	for _, b := range workload.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) { roundTrip(t, b) })
	}
}

func TestLoadedModelSimulatesIdentically(t *testing.T) {
	// A loaded model must produce the exact same trajectory as the
	// original (same initial state, same config).
	orig := workload.Al1000()
	m := FromSystem(orig.Name, orig.Sys, orig.Cfg)
	var buf bytes.Buffer
	if err := Save(&buf, m); err != nil {
		t.Fatal(err)
	}
	m2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	loaded, cfg, err := m2.System()
	if err != nil {
		t.Fatal(err)
	}

	simA, err := core.New(orig.Sys, orig.Cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer simA.Close()
	simB, err := core.New(loaded, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer simB.Close()
	simA.Run(10)
	simB.Run(10)
	for i := range orig.Sys.Pos {
		if d := orig.Sys.Pos[i].Sub(loaded.Pos[i]).MaxAbs(); d > 1e-12 {
			t.Fatalf("trajectory diverged at atom %d by %v", i, d)
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "salt.mml.json")
	b := workload.Salt()
	if err := SaveFile(path, FromSystem(b.Name, b.Sys, b.Cfg)); err != nil {
		t.Fatal(err)
	}
	m, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "salt" || len(m.Atoms) != 800 {
		t.Errorf("loaded %q with %d atoms", m.Name, len(m.Atoms))
	}
	if _, err := LoadFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() == 0 {
		t.Error("empty file written")
	}
}

func TestLoadRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"garbage":         "not json",
		"unknown field":   `{"version":1,"name":"x","box":{"l":[1,1,1]},"atoms":[],"engine":{},"bogus":1}`,
		"unknown element": `{"version":1,"name":"x","box":{"l":[10,10,10]},"atoms":[{"el":"Xx","p":[1,1,1]}],"engine":{"dt":1}}`,
		"bad version":     `{"version":99,"name":"x","box":{"l":[10,10,10]},"atoms":[],"engine":{"dt":1}}`,
		"bond oob":        `{"version":1,"name":"x","box":{"l":[10,10,10]},"atoms":[{"el":"Ar","p":[1,1,1]}],"bonds":[[0,5,1,1]],"engine":{"dt":1}}`,
		"atom outside":    `{"version":1,"name":"x","box":{"l":[10,10,10]},"atoms":[{"el":"Ar","p":[99,1,1]}],"engine":{"dt":1}}`,
	}
	for name, doc := range cases {
		t.Run(name, func(t *testing.T) {
			m, err := Load(strings.NewReader(doc))
			if err != nil {
				return // rejected at decode: fine
			}
			if _, _, err := m.System(); err == nil {
				t.Errorf("%s accepted", name)
			}
		})
	}
}

func TestExclusionsRebuiltOnLoad(t *testing.T) {
	b := workload.Nanocar()
	m := FromSystem(b.Name, b.Sys, b.Cfg)
	var buf bytes.Buffer
	if err := Save(&buf, m); err != nil {
		t.Fatal(err)
	}
	m2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	s, _, err := m2.System()
	if err != nil {
		t.Fatal(err)
	}
	if s.Excl == nil || s.Excl.Len() != b.Sys.Excl.Len() {
		t.Errorf("exclusions not rebuilt: %v vs %v", s.Excl.Len(), b.Sys.Excl.Len())
	}
}

func TestCompactEncoding(t *testing.T) {
	// The compact bond/angle/torsion arrays must survive a round trip and
	// keep the file reasonably small.
	b := workload.Nanocar()
	var buf bytes.Buffer
	if err := Save(&buf, FromSystem(b.Name, b.Sys, b.Cfg)); err != nil {
		t.Fatal(err)
	}
	perAtom := float64(buf.Len()) / float64(b.Sys.N())
	if perAtom > 300 {
		t.Errorf("encoding too fat: %.0f bytes/atom", perAtom)
	}
	if !strings.Contains(buf.String(), `"version": 1`) {
		t.Error("version missing from document")
	}
	// Round-trip floating point exactly.
	m2, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range m2.Atoms {
		want := b.Sys.Pos[i]
		if math.Abs(a.Pos[0]-want.X) > 0 || math.Abs(a.Pos[1]-want.Y) > 0 || math.Abs(a.Pos[2]-want.Z) > 0 {
			t.Fatalf("position %d not exact", i)
		}
	}
}

func TestMorseRoundTrip(t *testing.T) {
	b := workload.LJGas(2, 50, true)
	b.Sys.Morses = []atom.Morse{{I: 0, J: 1, D: 4.5, A: 2.0, R0: 1.2}}
	b.Sys.BuildExclusions()
	var buf bytes.Buffer
	if err := Save(&buf, FromSystem("morse", b.Sys, b.Cfg)); err != nil {
		t.Fatal(err)
	}
	m, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	s, _, err := m.System()
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Morses) != 1 || s.Morses[0] != b.Sys.Morses[0] {
		t.Errorf("morse lost in round trip: %+v", s.Morses)
	}
	if s.Excl == nil || !s.Excl.Excluded(0, 1) {
		t.Error("morse pair not excluded after load")
	}
}
