GO ?= go

# Packages whose tests exercise the concurrent engine and therefore run
# again under the race detector in `make verify`.
RACE_PKGS := ./internal/core ./internal/pool ./internal/verify ./internal/tracing

.PHONY: build test vet lint race race-bench telemetry-overhead trace-smoke fuzz verify clean bench-json benchdiff

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Static-analysis gate: go vet, the project analyzers (hotalloc, latchcheck,
# privforce, vecvalue — see internal/analysis) and the escape-budget gate
# that diffs `-gcflags=-m` hot-loop escapes against the checked-in baseline.
lint: vet
	$(GO) run ./cmd/mwlint ./...
	$(GO) run ./cmd/mwlint -escapes

test:
	$(GO) test ./...

# -count=1 defeats the test cache: the differential matrix must actually
# re-execute under the race detector every time.
race:
	$(GO) test -race -count=1 $(RACE_PKGS)

# One step of every benchmark workload under the race detector: -benchtime=1x
# drives the full phase pipeline (fan-out, latch, reduction) across all queue
# topologies without the cost of a timed run.
race-bench:
	$(GO) test -race -count=1 -run '^$$' \
		-bench 'BenchmarkStep|BenchmarkQueueTopology|BenchmarkForceReduction' \
		-benchtime 1x .

# Observer-effect regression gate: the live telemetry layer must stay under
# a 2% overhead on every paper workload (§IV-A methodology applied to
# internal/telemetry itself). Fails the build on a breach.
telemetry-overhead:
	$(GO) run ./cmd/mwbench observer-native -gate

# Trace-timeline smoke: a short traced Al-1000 run whose exported Chrome
# trace JSON must pass structural validation (record validates what it
# wrote; export re-validates the artifact from disk). CI uploads the file.
trace-smoke:
	$(GO) run ./cmd/mwtrace record -bench Al-1000 -threads 4 -steps 120 -o mw.trace.json
	$(GO) run ./cmd/mwtrace export -in mw.trace.json

# Short fuzz smoke of the parsers (seed corpus always runs under plain
# `go test`; this adds a minute of coverage-guided exploration).
fuzz:
	$(GO) test -fuzz=FuzzLoadSystem -fuzztime=30s ./internal/mml
	$(GO) test -fuzz=FuzzReadFrames -fuzztime=30s ./internal/xyz
	$(GO) test -fuzz=FuzzReorderTopology -fuzztime=30s ./internal/atom

# Benchmark-regression harness (§V-A gate): measures the LJ kernels, whole
# engine steps and per-phase latency percentiles into the next free
# BENCH_<n>.json. Compare against the committed baseline with
# `make benchdiff NEW=BENCH_1.json [TOL=0.15]`.
bench-json:
	$(GO) run ./cmd/mwbench bench-json

TOL ?= 0.15
benchdiff:
	$(GO) run ./cmd/mwbench benchdiff -base BENCH_0.json -new $(NEW) -tol $(TOL)

# The full correctness gate — what CI runs. See README.md §Verification.
verify: lint build test race race-bench telemetry-overhead trace-smoke

clean:
	$(GO) clean ./...
