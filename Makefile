GO ?= go

# Packages whose tests exercise the concurrent engine and therefore run
# again under the race detector in `make verify`.
RACE_PKGS := ./internal/core ./internal/pool ./internal/verify

.PHONY: build test vet race fuzz verify clean

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# -count=1 defeats the test cache: the differential matrix must actually
# re-execute under the race detector every time.
race:
	$(GO) test -race -count=1 $(RACE_PKGS)

# Short fuzz smoke of the parsers (seed corpus always runs under plain
# `go test`; this adds a minute of coverage-guided exploration).
fuzz:
	$(GO) test -fuzz=FuzzLoadSystem -fuzztime=30s ./internal/mml
	$(GO) test -fuzz=FuzzReadFrames -fuzztime=30s ./internal/xyz

# The full correctness gate — what CI runs. See README.md §Verification.
verify: vet build test race

clean:
	$(GO) clean ./...
