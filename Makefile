GO ?= go

# Packages whose tests exercise the concurrent engine and therefore run
# again under the race detector in `make verify`.
RACE_PKGS := ./internal/core ./internal/pool ./internal/verify ./internal/tracing ./internal/serve

.PHONY: build test vet lint lint-codegen race race-bench telemetry-overhead trace-smoke fuzz serve-smoke serve-obs-smoke verify clean bench-json benchdiff

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Static-analysis gate: go vet, the project analyzers (hotalloc, latchcheck,
# privforce, vecvalue, atomiccheck, hotprop — see internal/analysis), the
# escape-budget gate that diffs `-gcflags=-m` hot-loop escapes against the
# checked-in baseline, and the compiler-backed codegen gates (lint-codegen).
lint: vet lint-codegen
	$(GO) run ./cmd/mwlint ./...
	$(GO) run ./cmd/mwlint -escapes

# Codegen gates (amd64-only; mwlint prints a skip notice elsewhere):
#   -vecasm  parses `go build -gcflags=-S` under GOAMD64=v3 and checks each
#            //mw:hotpath function's instruction mix (packed FP present in
#            the LJ kernels, zero runtime calls in hot loops) against
#            internal/analysis/testdata/vecasm.baseline. The full
#            per-function census lands in mwlint.vecasm.txt (CI artifact).
#   -bce     diffs `-gcflags=-d=ssa/check_bce` bounds-check diagnostics in
#            hot loops against bce.baseline — empty for forces/lj.go, so a
#            new check in a pair loop fails the build.
# Regenerate after deliberate kernel changes with `mwlint -vecasm -update`
# and `mwlint -bce -update`.
lint-codegen:
	$(GO) run ./cmd/mwlint -vecasm -report mwlint.vecasm.txt
	$(GO) run ./cmd/mwlint -bce

test:
	$(GO) test ./...

# -count=1 defeats the test cache: the differential matrix must actually
# re-execute under the race detector every time.
race:
	$(GO) test -race -count=1 $(RACE_PKGS)

# One step of every benchmark workload under the race detector: -benchtime=1x
# drives the full phase pipeline (fan-out, latch, reduction) across all queue
# topologies without the cost of a timed run.
race-bench:
	$(GO) test -race -count=1 -run '^$$' \
		-bench 'BenchmarkStep|BenchmarkQueueTopology|BenchmarkForceReduction' \
		-benchtime 1x .

# Observer-effect regression gates: the live telemetry layer must stay
# under a 2% overhead on every paper workload, and the serving layer's
# production-sampled request tracing (TraceSample=64) must stay under the
# same budget against an untraced server (§IV-A methodology applied to
# internal/telemetry and internal/serve). Fails the build on a breach.
telemetry-overhead:
	$(GO) run ./cmd/mwbench observer-native -gate
	$(GO) run ./cmd/mwbench observer-serve -gate

# Trace-timeline smoke: a short traced Al-1000 run whose exported Chrome
# trace JSON must pass structural validation (record validates what it
# wrote; export re-validates the artifact from disk). CI uploads the file.
trace-smoke:
	$(GO) run ./cmd/mwtrace record -bench Al-1000 -threads 4 -steps 120 -o mw.trace.json
	$(GO) run ./cmd/mwtrace export -in mw.trace.json

# Short fuzz smoke of the parsers (seed corpus always runs under plain
# `go test`; this adds a minute of coverage-guided exploration).
fuzz:
	$(GO) test -fuzz=FuzzLoadSystem -fuzztime=30s ./internal/mml
	$(GO) test -fuzz=FuzzReadFrames -fuzztime=30s ./internal/xyz
	$(GO) test -fuzz=FuzzReorderTopology -fuzztime=30s ./internal/atom
	$(GO) test -run '^$$' -fuzz=FuzzTraceparent -fuzztime=30s ./internal/serve
	$(GO) test -run '^$$' -fuzz=FuzzSessionPath -fuzztime=30s ./internal/serve
	$(GO) test -run '^$$' -fuzz=FuzzStepParams -fuzztime=30s ./internal/serve
	$(GO) test -run '^$$' -fuzz=FuzzCreateModel -fuzztime=30s ./internal/serve
	$(GO) test -run '^$$' -fuzz=FuzzClusterList -fuzztime=30s ./internal/cells

# Service smoke: boot a real mwserved daemon, drive it with a short mwload
# sweep (including an oversubscription burst), and fail unless mwload's
# JSON report validates. CI uploads mwload.smoke.json.
serve-smoke:
	$(GO) build -o mwserved.smoke ./cmd/mwserved
	./mwserved.smoke -addr 127.0.0.1:7977 -queue-depth 64 & pid=$$!; \
	$(GO) run ./cmd/mwload -addr http://127.0.0.1:7977 -wait 15s \
		-workload lj-gas -sessions 32 -steps 2 -nruns 2 \
		-concurrency 4,16 -retries 8 -oversub 64 -json > mwload.smoke.json; \
	status=$$?; kill $$pid 2>/dev/null; rm -f mwserved.smoke; \
	exit $$status

# Serving-observability smoke: boot mwserved with every request traced,
# drive a short attributed mwload sweep (fails unless the report validates
# and the components decompose p99), pull the request-trace artifact
# through `mwtrace serve` (which structurally validates the span trees),
# and snapshot the SLO error-budget view. CI uploads mwload.obs.json and
# serve.trace.json.
serve-obs-smoke:
	$(GO) build -o mwserved.obs ./cmd/mwserved
	./mwserved.obs -addr 127.0.0.1:7978 -trace-sample 1 -slo-target 250ms & pid=$$!; \
	$(GO) run ./cmd/mwload -addr http://127.0.0.1:7978 -wait 15s \
		-workload Al-1000 -sessions 24 -steps 1 -nruns 2 \
		-concurrency 4,8 -retries 8 -attr -json > mwload.obs.json; \
	status=$$?; \
	if [ $$status -eq 0 ]; then \
		$(GO) run ./cmd/mwtrace serve -addr http://127.0.0.1:7978 -o serve.trace.json; \
		status=$$?; \
	fi; \
	if [ $$status -eq 0 ]; then \
		$(GO) run ./cmd/mwtop -addr 127.0.0.1:7978 -slo -once; \
		status=$$?; \
	fi; \
	kill $$pid 2>/dev/null; rm -f mwserved.obs; \
	exit $$status

# Benchmark-regression harness (§V-A gate): measures the LJ kernels, whole
# engine steps, per-phase latency percentiles and the mwserved tail-latency
# sweep into the next free BENCH_<n>.json. Compare against the committed
# baseline with `make benchdiff NEW=BENCH_3.json [TOL=0.15]`.
bench-json:
	$(GO) run ./cmd/mwbench bench-json

# BENCH_3.json is the baseline with the serve attribution-overhead rows
# (serve/*/attr-{off,on}/step) and oversub retry-after; BENCH_2 added the
# cluster-pair rung (kernel/lj-cluster-* rows, step/*/cluster, the cluster
# phase section), BENCH_1 was the first with serve/* rows, and BENCH_0
# predates the service (kernel-history record).
TOL ?= 0.15
benchdiff:
	$(GO) run ./cmd/mwbench benchdiff -base BENCH_3.json -new $(NEW) -tol $(TOL)

# The full correctness gate — what CI runs. See README.md §Verification.
verify: lint build test race race-bench telemetry-overhead trace-smoke serve-smoke serve-obs-smoke

clean:
	$(GO) clean ./...
