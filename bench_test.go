// Package mw_test is the repository-level benchmark harness: one benchmark
// per table and figure of the paper (regenerating each via
// internal/experiments), plus engine benchmarks for the three Table I
// workloads and the design-choice ablations called out in DESIGN.md.
//
// Run everything with:
//
//	go test -bench=. -benchmem
package mw_test

import (
	"testing"

	"mw/internal/atom"
	"mw/internal/cells"
	"mw/internal/core"
	"mw/internal/ewald"
	"mw/internal/experiments"
	"mw/internal/vec"
	"mw/internal/workload"
)

// --- Tables and figures -----------------------------------------------------

// BenchmarkTable1Workloads regenerates Table I's three benchmark systems.
func BenchmarkTable1Workloads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, bench := range workload.All() {
			if bench.Sys.N() == 0 {
				b.Fatal("empty system")
			}
		}
	}
}

// BenchmarkFig1Speedup runs the Fig 1 machine-model speedup sweep (reduced
// budget; the full run is `mwbench fig1`).
func BenchmarkFig1Speedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig1(60_000_000)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(r.Speedup["salt"][3], "salt-speedup-4c")
			b.ReportMetric(r.Speedup["Al-1000"][3], "al1000-speedup-4c")
		}
	}
}

// BenchmarkFig2Affinity runs the Fig 2 scheduler trace.
func BenchmarkFig2Affinity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig2()
		if i == 0 {
			b.ReportMetric(float64(r.Migrations), "migrations")
		}
	}
}

// BenchmarkTable3Pinning runs the Table III pinning-topology sweep (reduced
// horizon; the full run is `mwbench table3`).
func BenchmarkTable3Pinning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table3(3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkObserverEffect runs the §IV-A observer-effect experiment.
func BenchmarkObserverEffect(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Observer(4000, 100, 3)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(
				float64(r.ModelMonitored["synchronized"])/float64(r.ModelBaseline),
				"sync-slowdown")
		}
	}
}

// BenchmarkSamplingGranularity runs the §IV-B sampler comparison.
func BenchmarkSamplingGranularity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Sampling(800)
	}
}

// BenchmarkPartitionStrategies runs the §IV load-balance sweep.
func BenchmarkPartitionStrategies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Imbalance(5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDataPacking runs the §V-A layout experiment.
func BenchmarkDataPacking(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Packing(2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCachePollution runs the §V-B temp-churn experiment.
func BenchmarkCachePollution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Pollution(2)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(r.Vec3Fraction, "vec3-heap-frac")
		}
	}
}

// BenchmarkPMECrossover runs a reduced PME-vs-direct comparison.
func BenchmarkPMECrossover(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.PME(4, 6); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Engine benchmarks: one per Table I workload ----------------------------

func benchmarkSteps(b *testing.B, bench *workload.Benchmark, threads int) {
	b.Helper()
	cfg := bench.Cfg
	cfg.Threads = threads
	sim, err := core.New(bench.Sys, cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer sim.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Step()
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "updates/s")
}

func BenchmarkStepSalt(b *testing.B)    { benchmarkSteps(b, workload.Salt(), 1) }
func BenchmarkStepNanocar(b *testing.B) { benchmarkSteps(b, workload.Nanocar(), 1) }
func BenchmarkStepAl1000(b *testing.B)  { benchmarkSteps(b, workload.Al1000(), 1) }

func BenchmarkStepSalt4Threads(b *testing.B)   { benchmarkSteps(b, workload.Salt(), 4) }
func BenchmarkStepAl10004Threads(b *testing.B) { benchmarkSteps(b, workload.Al1000(), 4) }

// --- Ablation benchmarks (DESIGN.md §5) --------------------------------------

// BenchmarkFusedPhases vs BenchmarkSeparateRebuild: the paper's phase 3+4
// loop fusion on the rebuild-heavy Al-1000 workload.
func BenchmarkFusedPhases(b *testing.B) {
	bench := workload.Al1000()
	benchmarkSteps(b, bench, 2)
}

func BenchmarkSeparateRebuild(b *testing.B) {
	bench := workload.Al1000()
	cfg := bench.Cfg
	cfg.Threads = 2
	cfg.SeparateRebuild = true
	sim, err := core.New(bench.Sys, cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer sim.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Step()
	}
}

// BenchmarkQueueTopology compares the shared work queue with per-worker
// queues (§II-B).
func BenchmarkQueueTopologyShared(b *testing.B) {
	bench := workload.Salt()
	cfg := bench.Cfg
	cfg.Threads = 4
	cfg.Queues = core.SharedQueue
	sim, err := core.New(bench.Sys, cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer sim.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Step()
	}
}

func BenchmarkQueueTopologyPerWorker(b *testing.B) {
	bench := workload.Salt()
	cfg := bench.Cfg
	cfg.Threads = 4
	cfg.Queues = core.PerWorkerQueues
	sim, err := core.New(bench.Sys, cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer sim.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Step()
	}
}

// BenchmarkForceReduction compares privatized force arrays + reduction
// (phase 5) against a mutex-guarded shared array.
func BenchmarkForceReductionPrivatized(b *testing.B) {
	bench := workload.Salt()
	cfg := bench.Cfg
	cfg.Threads = 4
	cfg.Reduce = core.ReducePrivatized
	sim, err := core.New(bench.Sys, cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer sim.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Step()
	}
}

func BenchmarkForceReductionSharedMutex(b *testing.B) {
	bench := workload.Salt()
	cfg := bench.Cfg
	cfg.Threads = 4
	cfg.Reduce = core.ReduceSharedMutex
	sim, err := core.New(bench.Sys, cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer sim.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Step()
	}
}

// BenchmarkNeighborListVsBruteForce: the O(N) linked-cell build against the
// O(N²) enumeration it replaces.
func BenchmarkNeighborListBuild(b *testing.B) {
	bench := workload.Al1000()
	nl := cells.NewNeighborList(bench.Cfg.LJCutoff, bench.Cfg.Skin)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nl.Build(bench.Sys)
	}
}

func BenchmarkBruteForcePairs(b *testing.B) {
	bench := workload.Al1000()
	rng := bench.Cfg.LJCutoff + bench.Cfg.Skin
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cells.BruteForcePairs(bench.Sys, rng)
	}
}

// BenchmarkEwaldVsPME: one force evaluation each on a 512-ion periodic
// rock-salt lattice.
func periodicSalt() *atom.System {
	const side, a = 8, 2.82
	s := atom.NewSystem(atom.CubicBox(side*a, true))
	for x := 0; x < side; x++ {
		for y := 0; y < side; y++ {
			for z := 0; z < side; z++ {
				q := 1.0
				if (x+y+z)%2 == 1 {
					q = -1
				}
				s.AddAtom(atom.Na, vec.New(float64(x)*a, float64(y)*a, float64(z)*a), vec.Zero, q, false)
			}
		}
	}
	return s
}

func BenchmarkEwaldDirect(b *testing.B) {
	s := periodicSalt()
	e := ewald.Ewald{Alpha: 0.45, RCut: 0.4999 * s.Box.L.X, KMax: 8}
	f := make([]vec.Vec3, s.N())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Accumulate(s, f); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPMEAccumulate(b *testing.B) {
	s := periodicSalt()
	p := ewald.PME{Alpha: 0.45, RCut: 0.4999 * s.Box.L.X, Mesh: 32, Order: 4}
	f := make([]vec.Vec3, s.N())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Accumulate(s, f); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScalingSweep fits the engine's empirical complexity exponents.
func BenchmarkScalingSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Scaling(5)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(r.LJSlope, "lj-exponent")
			b.ReportMetric(r.CoulSlope, "coulomb-exponent")
		}
	}
}
