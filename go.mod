module mw

go 1.22
