// Profiling: the paper's §IV tool-chain on a live engine run. The engine's
// instrumentation hooks record ground truth for the force phase; three
// monitor flavors accumulate per-chunk timings; and the run is rendered
// both as the unified per-thread view the paper calls for (§IV-C) and as a
// coarse sampler would display it (§IV-B).
//
//	go run ./examples/profiling
package main

import (
	"fmt"
	"log"
	"time"

	"mw/internal/core"
	"mw/internal/perfmon"
	"mw/internal/workload"
)

func main() {
	const threads = 4
	b := workload.Salt()

	rec := perfmon.NewRecorder(core.PhaseForce, threads)
	mon := perfmon.NewShardedMonitor(threads, "chunk")
	start := time.Now()

	cfg := b.Cfg
	cfg.Threads = threads
	cfg.Partition = core.PartitionBlock // §II-B's 1/N split: visible imbalance
	cfg.Instrument = rec
	cfg.ChunkHook = func(w int) { mon.Record(w, "chunk", time.Since(start)) }

	sim, err := core.New(b.Sys, cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer sim.Close()
	sim.Run(30)

	tl := rec.Timeline()
	fmt.Println("ground-truth per-thread force-phase view ('#' busy, '.' barrier wait):")
	fmt.Print(perfmon.ThreadView(tl, 72))

	period := tl.Horizon / 5
	fmt.Printf("\nthe same run as a sample-and-hold tool displays it (period %v):\n",
		period.Round(time.Microsecond))
	fmt.Print(perfmon.SampledThreadView(tl, 72, period))

	fmt.Println("\nper-step force-phase imbalance (max/mean − 1):")
	for i, span := range tl.PhaseSpans {
		if i%6 != 0 {
			continue
		}
		fmt.Printf("  step %2d: %.2f\n", span.Step, span.Imbalance())
	}

	fmt.Println("\nsharded per-worker chunk counts (contention-free monitoring):")
	for w := 0; w < threads; w++ {
		fmt.Printf("  worker %d: last chunk at %v\n", w, mon.WorkerTotal(w, "chunk"))
	}
	fmt.Printf("  chunks recorded: %d\n", mon.Count("chunk"))
}
