// Meltingpoint: a small science workflow on top of the engine — ramp an
// argon crystal through its melting transition with a Berendsen thermostat
// and locate the transition from the diffusion signal (mean squared
// displacement). This is the kind of student experiment Molecular Workbench
// was built for, run headless through the library API with the analysis
// package doing the observing.
//
//	go run ./examples/meltingpoint
package main

import (
	"fmt"
	"log"
	"math/rand"

	"mw/internal/atom"
	"mw/internal/core"
	"mw/internal/observables"
	"mw/internal/report"
	"mw/internal/vec"
)

// argonCrystal builds a periodic fcc-like argon lattice near its solid
// density.
func argonCrystal(nx int) *atom.System {
	const a = 3.9 // Å, near the LJ minimum spacing for argon
	s := atom.NewSystem(atom.CubicBox(float64(nx)*a, true))
	for x := 0; x < nx; x++ {
		for y := 0; y < nx; y++ {
			for z := 0; z < nx; z++ {
				s.AddAtom(atom.Ar, vec.New(
					(float64(x)+0.5)*a, (float64(y)+0.5)*a, (float64(z)+0.5)*a),
					vec.Zero, 0, false)
			}
		}
	}
	return s
}

func main() {
	const (
		equilSteps  = 300
		sampleSteps = 800
		dt          = 2.0
	)
	temps := []float64{40, 80, 120, 160, 200, 240}

	t := report.NewTable("Argon melting scan (125 atoms, Berendsen thermostat)",
		"T target (K)", "T measured (K)", "MSD (Å²)", "diffusive?")
	var prevMSD float64
	transition := 0.0
	for _, T := range temps {
		s := argonCrystal(5)
		s.Thermalize(T, rand.New(rand.NewSource(21)))
		sim, err := core.New(s, core.Config{
			Dt:         dt,
			Threads:    2,
			Thermostat: &core.Berendsen{T: T, Tau: 100},
		})
		if err != nil {
			log.Fatal(err)
		}
		sim.Run(equilSteps)
		msd := observables.NewMSD(s)
		var m float64
		for k := 0; k < sampleSteps; k++ {
			sim.Step()
			m = msd.Update(s)
		}
		sim.Close()

		// In the solid, atoms rattle in place: MSD stays around the cage
		// size (a few Å²). Once molten they diffuse and MSD grows without
		// bound over the window.
		diffusive := m > 6.0
		mark := "solid"
		if diffusive {
			mark = "LIQUID"
		}
		t.AddRow(T, s.Temperature(), m, mark)
		if transition == 0 && diffusive && prevMSD <= 6.0 {
			transition = T
		}
		prevMSD = m
	}
	fmt.Print(t.String())
	if transition > 0 {
		fmt.Printf("\nmelting detected between the scan points around ~%.0f K\n(experimental argon: 84 K; a 125-atom periodic crystal with a truncated\nLJ potential melts in that neighbourhood, superheating slightly).\n", transition)
	} else {
		fmt.Println("\nno melting detected in the scanned range")
	}
}
