// Quickstart: build a small argon gas, run it through the parallel engine,
// and watch energy conservation — the minimal end-to-end use of the public
// engine API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"mw/internal/atom"
	"mw/internal/core"
	"mw/internal/vec"
)

func main() {
	// 1. Build a system: a 5×5×5 argon lattice in a periodic box.
	const nx, spacing = 5, 4.3
	box := atom.CubicBox(nx*spacing, true)
	sys := atom.NewSystem(box)
	for x := 0; x < nx; x++ {
		for y := 0; y < nx; y++ {
			for z := 0; z < nx; z++ {
				p := vec.New(
					(float64(x)+0.5)*spacing,
					(float64(y)+0.5)*spacing,
					(float64(z)+0.5)*spacing,
				)
				sys.AddAtom(atom.Ar, p, vec.Zero, 0, false)
			}
		}
	}
	// 2. Give the atoms thermal velocities at 90 K (liquid argon range).
	sys.Thermalize(90, rand.New(rand.NewSource(7)))

	// 3. Create the simulation: 2 fs timestep, 2 worker threads.
	sim, err := core.New(sys, core.Config{Dt: 2, Threads: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer sim.Close()

	// 4. Run and watch the conserved total energy.
	fmt.Printf("%d argon atoms, T0 = %.0f K\n", sys.N(), sys.Temperature())
	fmt.Printf("%8s %14s %12s %10s\n", "step", "total E (eV)", "PE (eV)", "T (K)")
	for i := 0; i <= 10; i++ {
		fmt.Printf("%8d %14.4f %12.4f %10.1f\n",
			sim.StepCount(), sim.TotalEnergy(), sim.PE(), sys.Temperature())
		sim.Run(50)
	}
	fmt.Printf("\nneighbor-list rebuilds: %d over %d steps\n", sim.Rebuilds(), sim.StepCount())
}
