// Nanocar: the paper's bond-dominated workload. The 989-atom nanocar
// benchmark (a bonded car of 505 atoms resting on an immovable 484-atom
// gold platform, 2277 bond terms) is driven across the platform by a weak
// external field while the engine reports whether the parallelization goal
// — a smooth display refresh rate on ~1000 atoms — is met.
//
//	go run ./examples/nanocar
package main

import (
	"fmt"
	"log"
	"time"

	"mw/internal/forces"
	"mw/internal/vec"
	"mw/internal/workload"

	"mw/internal/core"
)

// carCenter returns the center of mass of the mobile (car) atoms.
func carCenter(b *workload.Benchmark) vec.Vec3 {
	var c vec.Vec3
	n := 0
	for i := range b.Sys.Pos {
		if !b.Sys.Fixed[i] {
			c = c.Add(b.Sys.Pos[i])
			n++
		}
	}
	return c.Scale(1 / float64(n))
}

func main() {
	b := workload.Nanocar()
	ch := workload.Characterize(b.Name, b.Sys)
	fmt.Printf("nanocar: %d atoms (%d fixed platform), %d bond terms (%d radial, %d angles, %d torsions)\n",
		ch.Atoms, ch.Atoms-b.Sys.NumMobile(), ch.BondTerms, ch.Radial, ch.Angles, ch.Torsions)

	cfg := b.Cfg
	cfg.Threads = 4
	// A gentle uniform acceleration field pushes the car along +x ("the car
	// drives on the gold platform").
	cfg.Field = forces.Field{G: vec.New(2e-6, 0, 0)}

	sim, err := core.New(b.Sys, cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer sim.Close()

	start := carCenter(b)
	fmt.Printf("%8s %12s %14s %10s\n", "t (fs)", "drift x (Å)", "total E (eV)", "T (K)")
	wall := time.Now()
	const stepsPerFrame = 25
	for i := 0; i <= 8; i++ {
		fmt.Printf("%8.0f %12.4f %14.3f %10.1f\n",
			float64(sim.StepCount())*cfg.Dt,
			carCenter(b).X-start.X,
			sim.TotalEnergy(),
			b.Sys.Temperature())
		sim.Run(stepsPerFrame)
	}
	elapsed := time.Since(wall)
	rate := float64(sim.StepCount()) / elapsed.Seconds()
	fmt.Printf("\nachieved %.1f engine updates/s on this host ", rate)
	if rate >= 32 {
		fmt.Println("— meets the paper's 32 updates/s display goal")
	} else {
		fmt.Println("— below the paper's 32 updates/s display goal")
	}
}
