// Pinning: the paper's §V-B thread-affinity study on the machine model.
// The same LJ-dominated workload is replayed on the simulated 32-core Xeon
// X7560 under different sched_setaffinity topologies, showing why "running
// 8 threads on a single 8 core processor with a shared last level cache
// performs comparably to running on 32 cores" — and rendering the Fig 2
// style affinity heat map for a pinned vs an unpinned worker.
//
//	go run ./examples/pinning
package main

import (
	"fmt"
	"log"

	"mw/internal/jheap"
	"mw/internal/machine"
	"mw/internal/memtrace"
	"mw/internal/report"
	"mw/internal/sched"
	"mw/internal/topo"
	"mw/internal/workload"
)

func streams(b *workload.Benchmark, threads int) []memtrace.Stream {
	opt := memtrace.Options{
		Threads:        threads,
		Layout:         jheap.LayoutScattered,
		JavaTemps:      true,
		IncludeRebuild: b.RebuildHeavy,
		Cutoff:         b.Cfg.LJCutoff,
		Skin:           b.Cfg.Skin,
		Seed:           1,
	}
	m := memtrace.NewAddrMap(b.Sys.N(), opt)
	return memtrace.ForcePhase(b.Sys, m, opt)
}

func perCore(mask topo.CPUMask) []topo.CPUMask {
	cores := mask.Cores()
	out := make([]topo.CPUMask, len(cores))
	for i, c := range cores {
		out[i] = topo.MaskOf(c)
	}
	return out
}

func main() {
	m := topo.XeonX7560
	fmt.Println(m.String())
	fmt.Println()

	b := workload.Al1000()
	onePkg, err := m.CoresOnOnePackage(8)
	if err != nil {
		log.Fatal(err)
	}
	spread, err := m.CoresPerPackageSpread(2, 4)
	if err != nil {
		log.Fatal(err)
	}

	t := report.NewTable("Same workload, 8 threads, different affinity (modeled Xeon X7560)",
		"Topology", "Modeled time (ms)", "Migrations", "Remote-L3 hits")
	for _, cfg := range []struct {
		name string
		aff  []topo.CPUMask
	}{
		{"OS scheduled (no pinning)", nil},
		{"two cores per package " + spread.String(), perCore(spread)},
		{"8 cores on one package " + onePkg.String(), perCore(onePkg)},
	} {
		r, err := machine.Run(machine.Config{
			Machine:    m,
			Threads:    8,
			Affinity:   cfg.aff,
			Background: 8, BackgroundDuty: 0.5,
			QuantumCycles: 300_000,
			Seed:          11,
		}, streams(b, 8), 8)
		if err != nil {
			log.Fatal(err)
		}
		t.AddRow(cfg.name, r.Seconds*1e3, r.Migrations, r.Stats.RemoteL3Hits)
	}
	fmt.Print(t.String())

	// Fig 2 style: one pinned and one unpinned worker observed for a second.
	fmt.Println()
	s, err := sched.New(sched.Config{
		Machine:    topo.CoreI7,
		Threads:    2,
		Affinity:   []topo.CPUMask{0, topo.MaskOf(2)}, // worker 0 free, worker 1 pinned
		Background: 3,
		Seed:       5,
	})
	if err != nil {
		log.Fatal(err)
	}
	s.Run(1000)
	for w, name := range []string{"unpinned worker", "worker pinned to core 2"} {
		labels := []string{"core 0", "core 1", "core 2", "core 3"}
		fmt.Print(report.Heatmap(
			fmt.Sprintf("%s: %d migrations in 1 s", name, s.Migrations(w)),
			labels, s.LoadMatrix(w, 64)))
		fmt.Println()
		_ = w
	}
}
