// Saltmelt: the paper's Coulomb-dominated workload. A rock-salt crystal of
// 800 ions (the Table I "salt" benchmark) is heated until the lattice
// starts to disorder, with the long-range Coulomb interactions computed by
// the O(N²) direct sum the paper's engine uses — and, as a cross-check, the
// total electrostatic energy is compared against the smooth particle-mesh
// Ewald extension on a periodic copy of the same lattice.
//
//	go run ./examples/saltmelt
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"mw/internal/atom"
	"mw/internal/core"
	"mw/internal/ewald"
	"mw/internal/units"
	"mw/internal/vec"
	"mw/internal/workload"
)

// meanSquaredDisplacement measures how far ions have wandered from their
// lattice sites — the melting diagnostic.
func meanSquaredDisplacement(s *atom.System, ref []vec.Vec3) float64 {
	var sum float64
	for i := range ref {
		sum += s.Pos[i].Dist2(ref[i])
	}
	return sum / float64(len(ref))
}

func main() {
	b := workload.Salt()
	ref := append([]vec.Vec3(nil), b.Sys.Pos...)

	// Overheat the crystal: rescale to 1200 K.
	b.Sys.Thermalize(1200, rand.New(rand.NewSource(3)))

	cfg := b.Cfg
	cfg.Threads = 4
	sim, err := core.New(b.Sys, cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer sim.Close()

	fmt.Println("salt benchmark: 400 Na+ + 400 Cl-, direct O(N²) Coulomb")
	fmt.Printf("%8s %10s %12s %14s\n", "t (fs)", "T (K)", "MSD (Å²)", "total E (eV)")
	for i := 0; i <= 8; i++ {
		fmt.Printf("%8.0f %10.1f %12.3f %14.3f\n",
			float64(sim.StepCount())*cfg.Dt,
			b.Sys.Temperature(),
			meanSquaredDisplacement(b.Sys, ref),
			sim.TotalEnergy())
		sim.Run(25)
	}

	// Cross-check electrostatics against the PME extension on a periodic
	// rock-salt lattice of the same spacing.
	const side, a = 8, 2.82
	per := atom.NewSystem(atom.CubicBox(side*a, true))
	for x := 0; x < side; x++ {
		for y := 0; y < side; y++ {
			for z := 0; z < side; z++ {
				q := 1.0
				if (x+y+z)%2 == 1 {
					q = -1
				}
				per.AddAtom(atom.Na, vec.New(float64(x)*a, float64(y)*a, float64(z)*a), vec.Zero, q, false)
			}
		}
	}
	l := per.Box.L.X
	pme := ewald.PME{Alpha: 6 / l, RCut: 0.4999 * l, Mesh: 32, Order: 4}
	pe, err := pme.Energy(per)
	if err != nil {
		log.Fatal(err)
	}
	perIon := pe / float64(per.N())
	madelung := -perIon * 2 * a / units.CoulombK
	fmt.Printf("\nPME cross-check on a periodic %d-ion lattice:\n", per.N())
	fmt.Printf("  energy/ion = %.4f eV  →  Madelung constant %.4f (literature 1.7476, err %.2f%%)\n",
		perIon, madelung, 100*math.Abs(madelung-1.747565)/1.747565)
}
